package bfgehl

import "testing"

// TestSteadyStateAllocs drives the predictor past warmup and requires
// the scalar and batch hot paths to run allocation-free.
func TestSteadyStateAllocs(t *testing.T) {
	tr := diffTrace(t, 40000)
	p := New(Default64KB())
	for _, rec := range tr[:20000] {
		p.Predict(rec.PC)
		p.Update(rec.PC, rec.Taken, rec.Target)
	}
	i := 0
	if a := testing.AllocsPerRun(2000, func() {
		rec := tr[20000+i%10000]
		i++
		p.Predict(rec.PC)
		p.Update(rec.PC, rec.Taken, rec.Target)
	}); a > 0 {
		t.Errorf("scalar Predict+Update allocates %.1f per branch in steady state", a)
	}
	preds := make([]bool, 512)
	j := 0
	if a := testing.AllocsPerRun(20, func() {
		off := 20000 + (j*512)%10000
		j++
		p.SimulateBatch(tr[off:off+512], preds)
	}); a > 0 {
		t.Errorf("SimulateBatch allocates %.1f per span in steady state", a)
	}
}
