// Snapshot support (bfbp.state.v1). Mutable state: the weight tables,
// the BST, the segmented recency stacks (which carry the unfiltered
// history ring), and the adaptive threshold. The in-flight checkpoint
// FIFO, its free list, and the BF-GHR scratch vectors are transient.

package bfgehl

import (
	"errors"
	"fmt"
	"io"

	"bfbp/internal/bst"
	"bfbp/internal/sim"
	"bfbp/internal/state"
)

func (p *Predictor) configHash() uint64 {
	h := state.NewHash("bfgehl")
	h.String(p.cfg.Name)
	h.Int(p.cfg.Tables)
	h.Int(p.cfg.LogEntries)
	h.Ints(p.hists)
	h.Int(p.cfg.UnfilteredBits)
	h.Ints(p.cfg.SegBounds)
	h.Int(p.cfg.SegSize)
	h.Int(p.cfg.BSTEntries)
	h.Int(p.cfg.CounterBits)
	return h.Sum()
}

// SaveState implements sim.Snapshotter.
func (p *Predictor) SaveState(w io.Writer) error {
	if len(p.pending) != p.pendStart {
		return errors.New("bfgehl: cannot snapshot with in-flight predictions")
	}
	s := state.New(p.Name(), p.configHash())
	te := s.Section("tables")
	te.U32(uint32(len(p.tables)))
	for _, t := range p.tables {
		te.I8s(t)
	}
	if err := bst.SaveClassifier(s.Section("bst"), p.class); err != nil {
		return err
	}
	p.seg.SaveState(s.Section("history"))
	m := s.Section("misc")
	m.I32(p.theta)
	m.I32(p.tc)
	_, err := s.WriteTo(w)
	return err
}

// LoadState implements sim.Snapshotter.
func (p *Predictor) LoadState(r io.Reader) error {
	s, err := state.Load(r, p.Name(), p.configHash())
	if err != nil {
		return err
	}
	td, err := s.Dec("tables")
	if err != nil {
		return err
	}
	n := int(td.U32())
	if err := td.Err(); err != nil {
		return err
	}
	if n != len(p.tables) {
		return fmt.Errorf("%w: predictor has %d tables, snapshot %d", state.ErrCorrupt, len(p.tables), n)
	}
	fresh := make([][]int8, n)
	for i := range fresh {
		fresh[i] = td.I8s()
		if err := td.Err(); err != nil {
			return err
		}
		if len(fresh[i]) != len(p.tables[i]) {
			return fmt.Errorf("%w: table %d has %d entries, snapshot %d", state.ErrCorrupt, i, len(p.tables[i]), len(fresh[i]))
		}
	}
	cd, err := s.Dec("bst")
	if err != nil {
		return err
	}
	if err := bst.LoadClassifier(cd, p.class); err != nil {
		return err
	}
	hd, err := s.Dec("history")
	if err != nil {
		return err
	}
	if err := p.seg.LoadState(hd); err != nil {
		return err
	}
	// The fold pipeline is derived state: rebuild its register tails
	// from the restored segments' packed words (LoadState reset them, so
	// feeding the absolute words through the delta path reconstructs).
	if p.pipe != nil {
		p.pipe.Reset()
		for i := 0; i < p.seg.Segments(); i++ {
			tw, pw := p.seg.PackedWords(i)
			p.pipe.SegmentDelta2(i, tw, pw)
		}
	}
	m, err := s.Dec("misc")
	if err != nil {
		return err
	}
	p.theta = m.I32()
	p.tc = m.I32()
	if err := m.Err(); err != nil {
		return err
	}
	for i := range p.tables {
		copy(p.tables[i], fresh[i])
	}
	p.pending = p.pending[:0]
	p.pendStart = 0
	return nil
}

var _ sim.Snapshotter = (*Predictor)(nil)
