// Package bfgehl applies the paper's bias-free history to an O-GEHL-style
// predictor — the natural third instantiation after BF-Neural and
// BF-TAGE. The paper argues (§V) that a bias-free global history register
// lets a TAGE reach deep correlations with fewer tables; the same BF-GHR
// can index GEHL's summed weight tables, giving a tagless predictor whose
// geometric history lengths are measured in compressed (bias-free) bits.
//
// This is an extension beyond the paper's evaluated designs, included to
// demonstrate that the BF-GHR is a reusable substrate: the predictor
// composes internal/rs.Segmented (Fig. 7) with gehl-style adder trees.
package bfgehl

import (
	"strconv"

	"bfbp/internal/bst"
	"bfbp/internal/history"
	"bfbp/internal/rng"
	"bfbp/internal/rs"
	"bfbp/internal/sim"
	"bfbp/internal/trace"
)

// Config parameterises BF-GEHL.
type Config struct {
	Name string
	// Tables is the number of weight tables; table 0 is PC-indexed.
	Tables int
	// LogEntries is log2 of each table's entry count.
	LogEntries int
	// Hists are the per-table BF-GHR lengths for tables 1..Tables-1
	// (nil = geometric from 2 to the BF-GHR width).
	Hists []int
	// UnfilteredBits, SegBounds, SegSize configure the BF-GHR exactly as
	// in BF-TAGE.
	UnfilteredBits int
	SegBounds      []int
	SegSize        int
	// BSTEntries sizes the Branch Status Table.
	BSTEntries int
	// CounterBits is the weight width.
	CounterBits int
}

// Default64KB is an 8-table ~64KB BF-GEHL over the paper's segmentation.
func Default64KB() Config {
	return Config{
		Tables:         8,
		LogEntries:     13,
		UnfilteredBits: 16,
		SegBounds:      []int{16, 32, 48, 64, 80, 104, 128, 192, 256, 320, 416, 512, 768, 1024, 1280, 1536, 2048},
		SegSize:        8,
		BSTEntries:     8192,
		CounterBits:    5,
	}
}

type checkpoint struct {
	pc   uint64
	sum  int32
	idxs []uint32
}

// Predictor is a BF-GEHL predictor.
type Predictor struct {
	cfg    Config
	tables [][]int8
	mask   uint64
	hists  []int
	class  bst.Classifier
	seg    *rs.Segmented
	wMax   int8
	wMin   int8
	theta  int32
	tc     int32
	// pending is an in-order FIFO: live entries are pending[pendStart:],
	// compacted lazily; cpFree recycles retired checkpoints' idx slices.
	pending   []checkpoint
	pendStart int
	cpFree    []checkpoint
	idxBuf    []uint32
	// ghrVec / pcsVec hold the packed BF-GHR, rebuilt per reference
	// lookup (the retained scalar path; differential tests pin the
	// pipeline path to it). pcsVec is built but unused by the hash.
	ghrVec history.BitVec
	pcsVec history.BitVec
	// pipe maintains one folded register per history-indexed table over
	// the BF-GHR, updated by XOR deltas as the segments mutate instead of
	// re-derived with buildGHR + FoldWords per lookup; regs maps table ->
	// register id (table 0 is PC-indexed and has none), folds is FoldAll
	// scratch.
	pipe  *history.FoldPipeline
	regs  []int
	folds []uint64
}

// New returns a BF-GEHL predictor for cfg.
func New(cfg Config) *Predictor {
	if cfg.Tables < 2 {
		panic("bfgehl: need at least two tables")
	}
	if cfg.LogEntries < 4 || cfg.LogEntries > 22 {
		panic("bfgehl: LogEntries out of range")
	}
	if cfg.CounterBits < 2 || cfg.CounterBits > 8 {
		panic("bfgehl: CounterBits out of range")
	}
	if cfg.BSTEntries <= 0 || cfg.BSTEntries&(cfg.BSTEntries-1) != 0 {
		panic("bfgehl: BSTEntries must be a positive power of two")
	}
	if cfg.UnfilteredBits < 0 || cfg.UnfilteredBits > 64 {
		panic("bfgehl: UnfilteredBits out of range")
	}
	p := &Predictor{
		cfg:   cfg,
		mask:  uint64(1<<cfg.LogEntries - 1),
		seg:   rs.NewSegmented(cfg.SegBounds, cfg.SegSize),
		class: bst.NewTable(cfg.BSTEntries),
		wMax:  int8(1<<(cfg.CounterBits-1) - 1),
		wMin:  int8(-(1 << (cfg.CounterBits - 1))),
		theta: int32(cfg.Tables),
	}
	p.tables = make([][]int8, cfg.Tables)
	for i := range p.tables {
		p.tables[i] = make([]int8, 1<<cfg.LogEntries)
	}
	ghrBits := cfg.UnfilteredBits + p.seg.Bits()
	if cfg.Hists != nil {
		p.hists = append([]int{0}, cfg.Hists...)
	} else {
		p.hists = append([]int{0}, history.GeometricRange(2, ghrBits, cfg.Tables-1)...)
	}
	for _, h := range p.hists[1:] {
		if h > ghrBits {
			panic("bfgehl: history length exceeds BF-GHR width")
		}
	}
	// Configs whose geometry the fold pipeline cannot pack (SegSize
	// sweeps in ablations) keep the scalar reference fold path; compute
	// falls back when pipe is nil.
	if history.PipelineOK(cfg.SegSize, cfg.LogEntries) {
		p.pipe = history.NewFoldPipeline(cfg.UnfilteredBits, cfg.SegSize, p.seg.Segments())
		p.regs = make([]int, cfg.Tables)
		for i := 1; i < cfg.Tables; i++ {
			p.regs[i] = p.pipe.AddRegister(p.hists[i], cfg.LogEntries)
		}
		p.folds = make([]uint64, p.pipe.NumRegisters())
		p.seg.SetPackObserver(func(seg int, dT, dP uint64) {
			p.pipe.SegmentDelta2(seg, dT, dP)
		})
	}
	return p
}

// Name implements sim.Predictor.
func (p *Predictor) Name() string {
	if p.cfg.Name != "" {
		return p.cfg.Name
	}
	return "bf-gehl"
}

// GHRBits returns the BF-GHR width.
func (p *Predictor) GHRBits() int { return p.cfg.UnfilteredBits + p.seg.Bits() }

// buildGHR assembles the packed BF-GHR: the unfiltered prefix is one
// masked word off the ring, each segment contributes one packed word.
func (p *Predictor) buildGHR() {
	p.ghrVec.Reset()
	p.pcsVec.Reset()
	p.ghrVec.Append(p.seg.Ring().RecentTaken(p.cfg.UnfilteredBits), p.cfg.UnfilteredBits)
	p.seg.AppendPacked(&p.ghrVec, &p.pcsVec)
}

// newCheckpoint builds a checkpoint, reusing a retired one's idx slice.
func (p *Predictor) newCheckpoint(pc uint64, sum int32) checkpoint {
	cp := checkpoint{pc: pc, sum: sum}
	if k := len(p.cpFree); k > 0 {
		cp.idxs = p.cpFree[k-1].idxs[:0]
		p.cpFree = p.cpFree[:k-1]
	}
	cp.idxs = append(cp.idxs, p.idxBuf...)
	return cp
}

// putCheckpoint retires a checkpoint, recycling its idx slice.
func (p *Predictor) putCheckpoint(cp *checkpoint) {
	if cp.idxs == nil {
		return
	}
	p.cpFree = append(p.cpFree, checkpoint{idxs: cp.idxs})
	cp.idxs = nil
}

// compute evaluates the adder-tree sum for pc, filling idxBuf with each
// table's index. Per-table folds come from the fold pipeline (register
// tails XORed with the folded unfiltered prefix) — no BF-GHR rebuild,
// no FoldWords walk. It produces exactly the indices of computeRef
// (asserted by TestComputeDifferential).
func (p *Predictor) compute(pc uint64) int32 {
	if p.pipe == nil {
		return p.computeRef(pc)
	}
	if cap(p.idxBuf) < len(p.tables) {
		p.idxBuf = make([]uint32, len(p.tables))
	}
	p.idxBuf = p.idxBuf[:len(p.tables)]
	uT := p.seg.Ring().RecentTaken(p.cfg.UnfilteredBits)
	p.pipe.FoldAll(uT, p.folds)
	pch := rng.Hash64(pc >> 2)
	idxBuf, folds, regs := p.idxBuf, p.folds, p.regs
	var sum int32
	for i := range p.tables {
		var key uint64
		if i == 0 {
			key = pch
		} else {
			key = pch ^ folds[regs[i]]<<3 ^ uint64(i)<<57
		}
		idx := uint32(rng.Hash64(key) & p.mask)
		idxBuf[i] = idx
		sum += 2*int32(p.tables[i][idx]) + 1
	}
	return sum
}

// computeRef is the retained scalar reference model: rebuild the packed
// BF-GHR and re-fold it per table with FoldWords. Differential tests pin
// compute to this path bit for bit.
func (p *Predictor) computeRef(pc uint64) int32 {
	if cap(p.idxBuf) < len(p.tables) {
		p.idxBuf = make([]uint32, len(p.tables))
	}
	p.idxBuf = p.idxBuf[:len(p.tables)]
	p.buildGHR()
	bits := p.ghrVec.Words()
	pch := rng.Hash64(pc >> 2)
	var sum int32
	for i := range p.tables {
		var key uint64
		if i == 0 {
			key = pch
		} else {
			key = pch ^ history.FoldWords(bits, p.hists[i], p.cfg.LogEntries)<<3 ^ uint64(i)<<57
		}
		idx := uint32(rng.Hash64(key) & p.mask)
		p.idxBuf[i] = idx
		sum += 2*int32(p.tables[i][idx]) + 1
	}
	return sum
}

// Predict implements sim.Predictor.
func (p *Predictor) Predict(pc uint64) bool {
	sum := p.compute(pc)
	cp := p.newCheckpoint(pc, sum)
	// Compact the FIFO's popped prefix before append would grow it.
	if len(p.pending) == cap(p.pending) && p.pendStart > 0 {
		n := copy(p.pending, p.pending[p.pendStart:])
		p.pending = p.pending[:n]
		p.pendStart = 0
	}
	p.pending = append(p.pending, cp)
	return sum >= 0
}

// Update implements sim.Predictor.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) {
	var cp checkpoint
	if p.pendStart < len(p.pending) && p.pending[p.pendStart].pc == pc {
		cp = p.pending[p.pendStart]
		p.pendStart++
		if p.pendStart == len(p.pending) {
			p.pending = p.pending[:0]
			p.pendStart = 0
		}
	} else {
		cp = p.newCheckpoint(pc, p.compute(pc))
	}
	p.commit(pc, cp.sum, cp.idxs, taken)
	p.putCheckpoint(&cp)
}

// commit applies the resolved outcome given the lookup's sum and table
// indices (shared by Update and the fused batch step).
func (p *Predictor) commit(pc uint64, sum int32, idxs []uint32, taken bool) {
	pred := sum >= 0
	mag := sum
	if mag < 0 {
		mag = -mag
	}
	if pred != taken || mag <= p.theta {
		for i, idx := range idxs {
			w := p.tables[i][idx]
			if taken {
				if w < p.wMax {
					p.tables[i][idx] = w + 1
				}
			} else if w > p.wMin {
				p.tables[i][idx] = w - 1
			}
		}
		p.adaptTheta(pred != taken, mag)
	}
	// Commit into the BF-GHR with the branch's bias classification.
	p.class.Update(pc, taken)
	p.seg.Commit(history.Entry{
		HashedPC:  uint32(rng.Hash64(pc>>2) & 0x3FFF),
		Taken:     taken,
		NonBiased: p.class.Lookup(pc) == bst.NonBiased,
	})
}

// step runs one fused predict+update straight off idxBuf, skipping the
// in-flight FIFO and the checkpoint copy — valid exactly when no
// prediction is outstanding, which SimulateBatch guarantees.
func (p *Predictor) step(pc uint64, taken bool) bool {
	sum := p.compute(pc)
	p.commit(pc, sum, p.idxBuf, taken)
	return sum >= 0
}

// SimulateBatch implements sim.BatchSimulator: a span of records runs
// through the fused per-branch step, bit-exact with Predict+Update per
// record. Falls back to the canonical pair while checkpoints are in
// flight (a delayed-update queue drained mid-run).
func (p *Predictor) SimulateBatch(recs []trace.Record, preds []bool) {
	if p.pendStart < len(p.pending) {
		for i := range recs {
			preds[i] = p.Predict(recs[i].PC)
			p.Update(recs[i].PC, recs[i].Taken, recs[i].Target)
		}
		return
	}
	for i := range recs {
		preds[i] = p.step(recs[i].PC, recs[i].Taken)
	}
}

func (p *Predictor) adaptTheta(mispred bool, mag int32) {
	if mispred {
		p.tc++
		if p.tc >= 32 {
			p.theta++
			p.tc = 0
		}
	} else if mag <= p.theta {
		p.tc--
		if p.tc <= -32 {
			if p.theta > 1 {
				p.theta--
			}
			p.tc = 0
		}
	}
}

// explainTopWeights is the number of contributions Explain reports.
const explainTopWeights = 8

// Explain implements sim.Explainer: the adder-tree sum against theta
// with per-table 2w+1 contributions (Position = table index), plus the
// branch's BST classification. BF-GEHL's filter gates history insertion,
// not prediction, so FilterDecision stays false.
func (p *Predictor) Explain(pc uint64) sim.Provenance {
	var cp checkpoint
	found := false
	for j := len(p.pending) - 1; j >= p.pendStart; j-- {
		if p.pending[j].pc == pc {
			cp = p.pending[j]
			found = true
			break
		}
	}
	if !found {
		cp = p.newCheckpoint(pc, p.compute(pc))
		// Not in flight: retire the scratch checkpoint on exit.
		defer p.putCheckpoint(&cp)
	}
	ws := make([]sim.WeightContrib, 0, len(cp.idxs))
	for i, idx := range cp.idxs {
		ws = append(ws, sim.WeightContrib{Position: i, Weight: 2*int32(p.tables[i][idx]) + 1})
	}
	mag := cp.sum
	if mag < 0 {
		mag = -mag
	}
	return sim.Provenance{
		Predictor:  p.Name(),
		Component:  "adder",
		Prediction: cp.sum >= 0,
		Confidence: mag,
		Threshold:  p.theta,
		TopWeights: sim.TopWeightContribs(ws, explainTopWeights),
		BiasState:  p.class.Lookup(pc).String(),
	}
}

// Storage implements sim.StorageAccounter.
func (p *Predictor) Storage() sim.Breakdown {
	return sim.Breakdown{
		Name: p.Name(),
		Components: []sim.Component{
			{Name: "weight tables", Bits: p.cfg.Tables * p.cfg.CounterBits << uint(p.cfg.LogEntries)},
			{Name: "BST", Bits: p.class.StorageBits()},
			{Name: "segmented RS", Bits: p.seg.StorageBits()},
			{Name: "unfiltered history", Bits: 2048 * 16},
		},
	}
}

// ProbeState implements sim.StateProbe: per-table weight norms and
// clamp saturation (HistLen is the table's BF-GHR length), the BST's
// classification census, and the segmented recency stacks' fill.
func (p *Predictor) ProbeState() sim.TableStats {
	ts := sim.TableStats{Predictor: p.Name()}
	for i, tbl := range p.tables {
		name := "T" + strconv.Itoa(i)
		if i == 0 {
			name = "bias"
		}
		ts.Weights = append(ts.Weights, sim.WeightArrayStats(i, name, p.hists[i], tbl, p.wMin, p.wMax))
	}
	if tbl, ok := p.class.(*bst.Table); ok {
		counts := tbl.StateCounts()
		ts.Banks = append(ts.Banks, sim.BankStats{
			Bank:      0,
			Kind:      "bst",
			Entries:   tbl.Entries(),
			Live:      tbl.Entries() - counts[bst.NotFound],
			UsefulSet: counts[bst.NonBiased],
		})
	}
	for i := 0; i < p.seg.Segments(); i++ {
		ts.Recency = append(ts.Recency, sim.RecencyStats{
			Segment: i,
			Size:    p.seg.SegSize(),
			Live:    p.seg.SegmentLen(i),
			Depth:   p.cfg.SegBounds[i+1],
		})
	}
	return ts
}

var (
	_ sim.Predictor        = (*Predictor)(nil)
	_ sim.StorageAccounter = (*Predictor)(nil)
	_ sim.Explainer        = (*Predictor)(nil)
	_ sim.StateProbe       = (*Predictor)(nil)
)
