package bfneural

import (
	"bytes"
	"testing"

	"bfbp/internal/rng"
	"bfbp/internal/trace"
	"bfbp/internal/workload"
)

// diffTrace synthesizes a deterministic mixed workload for the
// differential tests.
func diffTrace(t *testing.T, n int) trace.Slice {
	t.Helper()
	for _, s := range workload.Traces() {
		if s.Name == "SPEC03" {
			return s.GenerateN(n)
		}
	}
	t.Fatal("SPEC03 workload spec unavailable")
	return nil
}

// TestComputeDifferential drives 20k branches and, at every step, runs
// the gathered fast-path compute and the retained per-entry-accessor
// computeRef side by side, requiring identical accumulators and index
// lists. This pins the packed recent-outcome read, the bulk PC and
// recency-stack gathers, and the bits.Len64 distance quantizer to the
// reference formulation across warmup, stack churn, and deep history.
func TestComputeDifferential(t *testing.T) {
	tr := diffTrace(t, 20000)
	for _, cfg := range []Config{Default64KB(), Ablation(ModeBiasFreeGHR)} {
		p := New(cfg)
		var a, b checkpoint
		for i, rec := range tr {
			p.compute(rec.PC, &a)
			p.computeRef(rec.PC, &b)
			if a.accum != b.accum {
				t.Fatalf("%s step %d: accum fast %d, ref %d", p.Name(), i, a.accum, b.accum)
			}
			if !equalI32(a.wmRows, b.wmRows) || !equalBool(a.wmDirs, b.wmDirs) {
				t.Fatalf("%s step %d: Wm rows/dirs diverge", p.Name(), i)
			}
			if !equalI32(a.wrsIdxs, b.wrsIdxs) || !equalBool(a.wrsDirs, b.wrsDirs) {
				t.Fatalf("%s step %d: Wrs idxs/dirs diverge", p.Name(), i)
			}
			p.Predict(rec.PC)
			p.Update(rec.PC, rec.Taken, rec.Target)
		}
	}
}

// TestQuantDistDifferential pins the bits.Len64 quantizer to the loop
// reference over the full pos_hist range.
func TestQuantDistDifferential(t *testing.T) {
	for d := uint64(0); d < 1<<14; d++ {
		if quantDist(d) != quantDistRef(d) {
			t.Fatalf("quantDist(%d) = %d, ref %d", d, quantDist(d), quantDistRef(d))
		}
	}
	r := rng.New(0x9D)
	for i := 0; i < 10000; i++ {
		d := r.Uint64() >> uint(r.Intn(60))
		if quantDist(d) != quantDistRef(d) {
			t.Fatalf("quantDist(%#x) = %d, ref %d", d, quantDist(d), quantDistRef(d))
		}
	}
}

// TestBatchMatchesScalar runs the same 20k-branch trace through the
// canonical Predict/Update pair and through SimulateBatch in ragged
// spans, requiring identical predictions at every branch and identical
// snapshot bytes at the end — the sim.BatchSimulator contract.
func TestBatchMatchesScalar(t *testing.T) {
	tr := diffTrace(t, 20000)
	scalar := New(Default64KB())
	batched := New(Default64KB())
	sizes := []int{1, 3, 17, 64, 256, 1000}
	preds := make([]bool, 1000)
	off, si := 0, 0
	for off < len(tr) {
		n := sizes[si%len(sizes)]
		si++
		if off+n > len(tr) {
			n = len(tr) - off
		}
		batched.SimulateBatch(tr[off:off+n], preds[:n])
		for i := 0; i < n; i++ {
			rec := tr[off+i]
			want := scalar.Predict(rec.PC)
			scalar.Update(rec.PC, rec.Taken, rec.Target)
			if preds[i] != want {
				t.Fatalf("branch %d: batch predicted %v, scalar %v", off+i, preds[i], want)
			}
		}
		off += n
	}
	var sb, bb bytes.Buffer
	if err := scalar.SaveState(&sb); err != nil {
		t.Fatalf("scalar snapshot: %v", err)
	}
	if err := batched.SaveState(&bb); err != nil {
		t.Fatalf("batch snapshot: %v", err)
	}
	if !bytes.Equal(sb.Bytes(), bb.Bytes()) {
		t.Fatal("batch and scalar predictor snapshots differ")
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalBool(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
