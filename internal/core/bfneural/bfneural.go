// Package bfneural implements the Bias-Free Neural predictor of the paper
// (§IV, Algorithms 2 and 3): a neural predictor that
//
//   - classifies branches on the fly with a Branch Status Table (BST) and
//     predicts completely biased branches with their recorded direction,
//     excluding them from perceptron prediction and training;
//   - keeps a conventional perceptron component over the ht most recent
//     *unfiltered* history bits (the 2-D weight table Wm), which rescues
//     strongly biased-leaning branches during training (§IV-B2);
//   - keeps a recency stack (RS) of the most recent occurrence of each
//     non-biased branch, with its positional history (pos_hist), and
//     correlates through a one-dimensional weight table Wrs indexed by a
//     hash of the current PC, the stack entry's address, its quantized
//     distance, and the folded global history (§IV-A, §IV-B2); and
//   - optionally consults a loop-count predictor for constant-trip loops.
//
// The Mode switch reproduces the ablation of the paper's Fig. 9: filtering
// only the weight tables, filtering the history (without the recency
// stack), and the full recency-stack design.
package bfneural

import (
	"math/bits"

	"bfbp/internal/bst"
	"bfbp/internal/dotp"
	"bfbp/internal/history"
	"bfbp/internal/looppred"
	"bfbp/internal/rng"
	"bfbp/internal/rs"
	"bfbp/internal/sim"
	"bfbp/internal/trace"
)

// Mode selects the history-filtering level (the Fig. 9 ablation).
type Mode int

const (
	// ModeFilterWeights gates prediction/training by the BST but leaves
	// the global history unfiltered ("BF-Neural (fhist)" in Fig. 9): the
	// perceptron runs over RecentUnfiltered history positions only.
	ModeFilterWeights Mode = iota
	// ModeBiasFreeGHR additionally filters biased branches out of the
	// global history register, but keeps every dynamic instance of
	// non-biased branches ("ghist bias-free + fhist").
	ModeBiasFreeGHR
	// ModeFull adds the recency stack: only the most recent occurrence
	// of each non-biased branch, with positional history ("ghist
	// bias-free + RS + fhist"). This is the BF-Neural predictor.
	ModeFull
)

// Config parameterises BF-Neural.
type Config struct {
	Name string
	// Mode selects the filtering level (default ModeFull).
	Mode Mode
	// BSTEntries is the Branch Status Table size (16384 in §VI-B).
	BSTEntries int
	// Classifier overrides the default 2-bit-FSM BST (e.g. a
	// probabilistic table or a static oracle, §VI-D).
	Classifier bst.Classifier
	// BiasEntries is the bias weight table Wb size.
	BiasEntries int
	// WmRows is the row count of the 2-D recent-history table Wm
	// (1024 in §VI-B).
	WmRows int
	// RecentUnfiltered is ht, the recent unfiltered positions covered by
	// Wm (16 in the practical design; 72 in ModeFilterWeights to mirror
	// the Fig. 9 bar).
	RecentUnfiltered int
	// WrsEntries is the 1-D weight table size (65536 in §VI-B).
	WrsEntries int
	// RSDepth is the recency stack depth (48 in §VI-B); in
	// ModeBiasFreeGHR it is the filtered shift-register depth.
	RSDepth int
	// DistBits caps pos_hist distances at 2^DistBits-1.
	DistBits int
	// FoldWidth is the folded-history hash width.
	FoldWidth int
	// LoopPredictor enables the 64-entry 4-way loop component (§IV-B2).
	LoopPredictor bool
	// NotFoundPrediction is the direction guessed for never-seen
	// branches (Algorithm 2's "taken/not_taken"); false = not taken.
	NotFoundPrediction bool
	// AheadPipelined removes the current branch PC from the correlating
	// weight-row hashes (§VIII future work): the dot product can then be
	// computed ahead of time from history alone, with the PC selecting
	// only the bias weight at the last moment. Costs some accuracy to
	// cross-branch aliasing.
	AheadPipelined bool
}

// Default64KB is the paper's §VI-B configuration: BST 16384, Wm 1024x16,
// Wrs 65536, RS depth 48, with the loop predictor.
func Default64KB() Config {
	return Config{
		Mode:             ModeFull,
		BSTEntries:       16384,
		BiasEntries:      1 << 12,
		WmRows:           1024,
		RecentUnfiltered: 16,
		WrsEntries:       1 << 16,
		RSDepth:          48,
		DistBits:         12,
		FoldWidth:        12,
		LoopPredictor:    true,
	}
}

// Default32KB is the paper's 32KB configuration (2.73 MPKI in §VI-B).
func Default32KB() Config {
	c := Default64KB()
	c.BSTEntries = 8192
	c.WmRows = 512
	c.WrsEntries = 1 << 15
	c.BiasEntries = 1 << 11
	return c
}

// Ablation returns the Fig. 9 configuration for the given mode at the
// 64KB scale: ModeFilterWeights runs the conventional 72-deep unfiltered
// perceptron with BST gating; ModeBiasFreeGHR filters the history without
// a recency stack; ModeFull is BF-Neural.
func Ablation(mode Mode) Config {
	c := Default64KB()
	c.Mode = mode
	if mode == ModeFilterWeights {
		c.RecentUnfiltered = 72
		c.RSDepth = 0
		c.WmRows = 512
		c.WrsEntries = 2 // unused; keep tiny
	}
	return c
}

// weights are 6-bit in the storage budget; clamp accordingly.
const (
	wMax = 31
	wMin = -32
)

// filtered history entry (bias-free GHR / recency stack element).
type fentry struct {
	hpc   uint32
	taken bool
	seq   uint64
}

type checkpoint struct {
	pc          uint64
	state       bst.State
	accum       int32
	wmRows      []int32 // flat Wm indices, -1 when unpopulated
	wmDirs      []bool
	wrsIdxs     []int32
	wrsDirs     []bool
	loopPred    bool
	loopOK      bool
	loopApplied bool
	pred        bool // the perceptron/bias decision before loop override
	final       bool
}

// Predictor is the BF-Neural predictor.
type Predictor struct {
	cfg Config

	class bst.Classifier
	wb    []int8
	wm    []int8 // WmRows x RecentUnfiltered
	wrs   []int8

	biasMask uint64
	wmMask   uint64
	wrsMask  uint64

	folds *history.FoldSet // unfiltered outcome history + folds
	seq   uint64           // global committed-branch counter

	// Filtered history: ModeFull keeps a recency stack (unique PCs,
	// O(1) hit/push via rs.Stack); ModeBiasFreeGHR a shift register with
	// duplicates, newest-first in filt.
	rstack *rs.Stack
	filt   []fentry

	loop     *looppred.Predictor
	withLoop int32

	theta int32
	tc    int32
	// pending is an in-order FIFO: live entries are pending[pendStart:],
	// compacted lazily so steady state never reallocates. cpFree recycles
	// retired checkpoints' index slices.
	pending   []checkpoint
	pendStart int
	cpFree    []checkpoint
	distCap   uint64
	// qdist tabulates quantDist over [0, distCap] (distances arrive
	// saturated), replacing the per-entry bit scan with one small-table
	// load; nil when DistBits is too wide to tabulate.
	qdist []uint32

	// compute scratch: recent hashed PCs gathered from the ring, so the
	// Wm hot loop runs over a dense array instead of per-entry accessors.
	gpcs []uint32
	// scratch is the fused-step checkpoint: SimulateBatch consumes each
	// prediction immediately, so it never goes through the FIFO or the
	// slice pool.
	scratch checkpoint
}

// New returns a BF-Neural predictor for cfg.
func New(cfg Config) *Predictor {
	if cfg.BSTEntries <= 0 || cfg.BSTEntries&(cfg.BSTEntries-1) != 0 {
		panic("bfneural: BSTEntries must be a positive power of two")
	}
	if cfg.BiasEntries <= 0 || cfg.BiasEntries&(cfg.BiasEntries-1) != 0 {
		panic("bfneural: BiasEntries must be a positive power of two")
	}
	if cfg.WmRows <= 0 || cfg.WmRows&(cfg.WmRows-1) != 0 {
		panic("bfneural: WmRows must be a positive power of two")
	}
	if cfg.WrsEntries <= 0 || cfg.WrsEntries&(cfg.WrsEntries-1) != 0 {
		panic("bfneural: WrsEntries must be a positive power of two")
	}
	if cfg.RecentUnfiltered < 0 || cfg.RSDepth < 0 || cfg.RecentUnfiltered+cfg.RSDepth == 0 {
		panic("bfneural: history geometry invalid")
	}
	if cfg.FoldWidth == 0 {
		cfg.FoldWidth = 12
	}
	if cfg.DistBits == 0 {
		cfg.DistBits = 12
	}
	p := &Predictor{
		cfg:      cfg,
		wb:       make([]int8, cfg.BiasEntries),
		wm:       make([]int8, cfg.WmRows*maxInt(cfg.RecentUnfiltered, 1)),
		wrs:      make([]int8, cfg.WrsEntries),
		biasMask: uint64(cfg.BiasEntries - 1),
		wmMask:   uint64(cfg.WmRows - 1),
		wrsMask:  uint64(cfg.WrsEntries - 1),
		distCap:  1<<uint(cfg.DistBits) - 1,
		// A deliberately small initial threshold: most of this
		// predictor's inputs are single high-confidence stack entries
		// rather than dozens of weak unfiltered correlations, so confident
		// correct states should freeze quickly; the adaptive loop raises
		// theta where more training is needed.
		theta: 24,
	}
	if cfg.Classifier != nil {
		p.class = cfg.Classifier
	} else {
		p.class = bst.NewTable(cfg.BSTEntries)
	}
	p.folds = history.NewFoldSet(foldLengths(), cfg.FoldWidth, 4096)
	p.gpcs = make([]uint32, maxInt(cfg.RecentUnfiltered, 1))
	if cfg.DistBits <= 16 {
		p.qdist = make([]uint32, p.distCap+1)
		for d := range p.qdist {
			p.qdist[d] = uint32(quantDist(uint64(d)))
		}
	}
	if cfg.Mode == ModeFull && cfg.RSDepth > 0 {
		p.rstack = rs.NewStack(cfg.RSDepth, cfg.DistBits)
	}
	if cfg.LoopPredictor {
		p.loop = looppred.NewDefault()
	}
	return p
}

// newCheckpoint builds a checkpoint, reusing a retired one's slices.
func (p *Predictor) newCheckpoint(pc uint64, state bst.State) checkpoint {
	cp := checkpoint{pc: pc, state: state}
	if k := len(p.cpFree); k > 0 {
		f := p.cpFree[k-1]
		p.cpFree = p.cpFree[:k-1]
		cp.wmRows = f.wmRows[:0]
		cp.wmDirs = f.wmDirs[:0]
		cp.wrsIdxs = f.wrsIdxs[:0]
		cp.wrsDirs = f.wrsDirs[:0]
	}
	return cp
}

// putCheckpoint retires a checkpoint, recycling its slices.
func (p *Predictor) putCheckpoint(cp *checkpoint) {
	if cp.wmRows == nil && cp.wrsIdxs == nil {
		return
	}
	p.cpFree = append(p.cpFree, checkpoint{
		wmRows:  cp.wmRows,
		wmDirs:  cp.wmDirs,
		wrsIdxs: cp.wrsIdxs,
		wrsDirs: cp.wrsDirs,
	})
	cp.wmRows, cp.wmDirs, cp.wrsIdxs, cp.wrsDirs = nil, nil, nil, nil
}

// foldLengths is the fixed bank of folded-history registers: dense for
// recent history, geometric out to 2048 branches.
func foldLengths() []int {
	return []int{1, 2, 3, 4, 6, 8, 11, 16, 22, 32, 45, 64, 91, 128,
		181, 256, 362, 512, 724, 1024, 1448, 2048}
}

// Name implements sim.Predictor.
func (p *Predictor) Name() string {
	if p.cfg.Name != "" {
		return p.cfg.Name
	}
	switch p.cfg.Mode {
	case ModeFilterWeights:
		return "bf-neural(fhist)"
	case ModeBiasFreeGHR:
		return "bf-neural(ghist)"
	default:
		return "bf-neural"
	}
}

// quantDist quantizes a pos_hist distance for hashing: exact below 64
// (loop-positional patterns like Fig. 4 need every iteration separated),
// floating-point-style with a 6-bit mantissa above (distant correlations
// tolerate a few percent of positional jitter, and coarsening them keeps
// the Wrs working set small).
func quantDist(d uint64) uint64 {
	if d < 64 {
		return d
	}
	shift := uint(bits.Len64(d)) - 6
	return (d >> shift) << shift
}

// quantDistRef is the original loop formulation, retained as the
// reference model for the differential test pinning quantDist.
func quantDistRef(d uint64) uint64 {
	if d < 64 {
		return d
	}
	shift := uint(0)
	for v := d; v >= 64; v >>= 1 {
		shift++
	}
	return (d >> shift) << shift
}

// compute evaluates the perceptron sum for a non-biased pc, filling the
// checkpoint's index lists. The Wm loop reads the recent outcome bits
// as one packed word and the hashed PCs as a dense gather; the Wrs loop
// runs over arrays gathered from the recency stack in one list walk.
// Both produce exactly the rows/indices of computeRef (asserted by
// TestComputeDifferential), which is the straight per-entry-accessor
// formulation kept as the reference model.
func (p *Predictor) compute(pc uint64, cp *checkpoint) {
	var pch uint64
	if !p.cfg.AheadPipelined {
		pch = rng.Hash64(pc >> 2)
	}
	accum := int32(p.wb[(pc>>2)&p.biasMask])

	// Conventional component over recent unfiltered history (Wm).
	ht := p.cfg.RecentUnfiltered
	rows := cp.wmRows[:0]
	dirs := cp.wmDirs[:0]
	ring := p.folds.Ring()
	if n := ring.Len(); n >= ht && ht <= 64 {
		if cap(rows) < ht {
			rows = make([]int32, ht)
			dirs = make([]bool, ht)
		} else {
			rows = rows[:ht]
			dirs = dirs[:ht]
		}
		rt := ring.RecentTaken(ht)
		gpcs := p.gpcs[:ht]
		ring.FillRecentPCs(gpcs)
		fs, wmMask := p.folds, p.wmMask
		for i := 1; i <= ht; i++ {
			key := pch ^ uint64(gpcs[i-1])*0x9e3779b97f4a7c15 ^ fs.Fold(i)<<17 ^ uint64(i)<<40
			rows[i-1] = int32(rng.Hash64(key)&wmMask)*int32(ht) + int32(i-1)
			dirs[i-1] = rt>>uint(i-1)&1 != 0
		}
		accum += dotp.SignedGatherSum(p.wm, rows, dirs)
	} else {
		for i := 1; i <= ht; i++ {
			e, ok := ring.At(i)
			if !ok {
				rows = append(rows, -1)
				dirs = append(dirs, false)
				continue
			}
			key := pch ^ uint64(e.HashedPC)*0x9e3779b97f4a7c15 ^ p.folds.Fold(i)<<17 ^ uint64(i)<<40
			row := int32(rng.Hash64(key)&p.wmMask)*int32(ht) + int32(i-1)
			rows = append(rows, row)
			dirs = append(dirs, e.Taken)
			w := int32(p.wm[row])
			if e.Taken {
				accum += w
			} else {
				accum -= w
			}
		}
	}
	cp.wmRows, cp.wmDirs = rows, dirs

	// Recency-stack component (Wrs).
	idxs := cp.wrsIdxs[:0]
	sdirs := cp.wrsDirs[:0]
	if p.rstack != nil {
		// §IV-B2: hash(pc, A, pos_hist, folded history up to the
		// entry) — no relative depth, so previously detected
		// non-biased branches never relearn when depths shift. The
		// recency walk is fused into the hash loop over the stack's
		// dense view; distances saturate exactly as Iter reports them.
		v := p.rstack.View()
		n := v.N
		if cap(idxs) < n {
			idxs = make([]int32, n)
			sdirs = make([]bool, n)
		} else {
			idxs = idxs[:n]
			sdirs = sdirs[:n]
		}
		fs, wrsMask := p.folds, p.wrsMask
		order, spc, stk, sseq := v.Order, v.PC, v.Taken, v.Seq
		cur, maxd := v.Cur, v.MaxDist
		if qd := p.qdist; qd != nil {
			for j := 0; j < n; j++ {
				sl := order[j]
				d := cur - sseq[sl]
				if d > maxd {
					d = maxd
				}
				sdirs[j] = stk[sl]
				key := pch ^ spc[sl]*0x9e3779b97f4a7c15 ^ uint64(qd[d])<<28 ^ fs.Fold(int(d))<<9
				idxs[j] = int32(rng.Hash64(key) & wrsMask)
			}
		} else {
			for j := 0; j < n; j++ {
				sl := order[j]
				d := cur - sseq[sl]
				if d > maxd {
					d = maxd
				}
				sdirs[j] = stk[sl]
				key := pch ^ spc[sl]*0x9e3779b97f4a7c15 ^ quantDist(d)<<28 ^ fs.Fold(int(d))<<9
				idxs[j] = int32(rng.Hash64(key) & wrsMask)
			}
		}
		accum += dotp.SignedGatherSum(p.wrs, idxs, sdirs)
		cp.wrsIdxs, cp.wrsDirs = idxs, sdirs
		cp.accum = accum
		return
	}
	cp.wrsIdxs = idxs
	cp.wrsDirs = sdirs
	for j := range p.filt {
		e := &p.filt[j]
		dist := p.seq - e.seq
		if dist > p.distCap {
			dist = p.distCap
		}
		// Idealized/ghist variant: relative depth selects the context
		// (Algorithm 1 style).
		key := pch ^ uint64(e.hpc)*0x9e3779b97f4a7c15 ^ uint64(j)<<28 ^ p.folds.Fold(int(dist))<<9
		idx := int32(rng.Hash64(key) & p.wrsMask)
		cp.wrsIdxs = append(cp.wrsIdxs, idx)
		cp.wrsDirs = append(cp.wrsDirs, e.taken)
		w := int32(p.wrs[idx])
		if e.taken {
			accum += w
		} else {
			accum -= w
		}
	}
	cp.accum = accum
}

// computeRef is the retained reference model for compute: the same sum
// through the per-entry accessors (Ring.At, Stack.Iter, the loop-based
// quantizer) instead of the gathered fast paths. Differential tests run
// both and require identical accumulators and index lists.
func (p *Predictor) computeRef(pc uint64, cp *checkpoint) {
	var pch uint64
	if !p.cfg.AheadPipelined {
		pch = rng.Hash64(pc >> 2)
	}
	accum := int32(p.wb[(pc>>2)&p.biasMask])

	ht := p.cfg.RecentUnfiltered
	cp.wmRows = cp.wmRows[:0]
	cp.wmDirs = cp.wmDirs[:0]
	ring := p.folds.Ring()
	for i := 1; i <= ht; i++ {
		e, ok := ring.At(i)
		if !ok {
			cp.wmRows = append(cp.wmRows, -1)
			cp.wmDirs = append(cp.wmDirs, false)
			continue
		}
		key := pch ^ uint64(e.HashedPC)*0x9e3779b97f4a7c15 ^ p.folds.Fold(i)<<17 ^ uint64(i)<<40
		row := int32(rng.Hash64(key)&p.wmMask)*int32(ht) + int32(i-1)
		cp.wmRows = append(cp.wmRows, row)
		cp.wmDirs = append(cp.wmDirs, e.Taken)
		w := int32(p.wm[row])
		if e.Taken {
			accum += w
		} else {
			accum -= w
		}
	}

	cp.wrsIdxs = cp.wrsIdxs[:0]
	cp.wrsDirs = cp.wrsDirs[:0]
	if p.rstack != nil {
		for it := p.rstack.Iter(); ; {
			e, ok := it.Next()
			if !ok {
				break
			}
			q := quantDistRef(e.Dist)
			key := pch ^ e.PC*0x9e3779b97f4a7c15 ^ q<<28 ^ p.folds.Fold(int(e.Dist))<<9
			idx := int32(rng.Hash64(key) & p.wrsMask)
			cp.wrsIdxs = append(cp.wrsIdxs, idx)
			cp.wrsDirs = append(cp.wrsDirs, e.Taken)
			w := int32(p.wrs[idx])
			if e.Taken {
				accum += w
			} else {
				accum -= w
			}
		}
		cp.accum = accum
		return
	}
	for j := range p.filt {
		e := &p.filt[j]
		dist := p.seq - e.seq
		if dist > p.distCap {
			dist = p.distCap
		}
		key := pch ^ uint64(e.hpc)*0x9e3779b97f4a7c15 ^ uint64(j)<<28 ^ p.folds.Fold(int(dist))<<9
		idx := int32(rng.Hash64(key) & p.wrsMask)
		cp.wrsIdxs = append(cp.wrsIdxs, idx)
		cp.wrsDirs = append(cp.wrsDirs, e.taken)
		w := int32(p.wrs[idx])
		if e.taken {
			accum += w
		} else {
			accum -= w
		}
	}
	cp.accum = accum
}

// lookup fills a checkpoint's prediction fields for cp.pc (the body of
// Algorithm 2, shared by Predict and the fused batch step).
func (p *Predictor) lookup(cp *checkpoint) {
	switch cp.state {
	case bst.NotFound:
		cp.pred = p.cfg.NotFoundPrediction
	case bst.Taken:
		cp.pred = true
	case bst.NotTaken:
		cp.pred = false
	default:
		p.compute(cp.pc, cp)
		cp.pred = cp.accum >= 0
	}
	cp.final = cp.pred
	if p.loop != nil {
		lp, ok := p.loop.Predict(cp.pc)
		cp.loopPred, cp.loopOK = lp, ok
		if ok && p.withLoop >= 0 {
			cp.final = lp
			cp.loopApplied = true
		}
	}
}

// Predict implements sim.Predictor (Algorithm 2).
func (p *Predictor) Predict(pc uint64) bool {
	cp := p.newCheckpoint(pc, p.class.Lookup(pc))
	p.lookup(&cp)
	// Compact the FIFO's popped prefix before append would grow it.
	if len(p.pending) == cap(p.pending) && p.pendStart > 0 {
		n := copy(p.pending, p.pending[p.pendStart:])
		p.pending = p.pending[:n]
		p.pendStart = 0
	}
	p.pending = append(p.pending, cp)
	return cp.final
}

// commit applies the resolved outcome for cp.pc (the body of Algorithm
// 3 after the checkpoint is in hand, shared by Update and the fused
// batch step).
func (p *Predictor) commit(cp *checkpoint, taken bool) {
	pc := cp.pc
	if p.loop != nil {
		if cp.loopOK && cp.loopPred != cp.pred {
			p.withLoop = clamp32(p.withLoop+b2i(cp.loopPred == taken)*2-1, -64, 63)
		}
		p.loop.Update(pc, taken, cp.pred != taken)
	}

	switch cp.state {
	case bst.NotFound:
		// First commit: adopt the direction as the bias.
	case bst.Taken, bst.NotTaken:
		if cp.pred != taken {
			// The branch just revealed itself as non-biased; train the
			// weights so the perceptron picks it up immediately
			// (Algorithm 3 updates Wb, Wm, Wrs on this transition).
			p.compute(pc, cp)
			p.trainWeights(cp, taken)
		}
	case bst.NonBiased:
		mag := cp.accum
		if mag < 0 {
			mag = -mag
		}
		if cp.pred != taken || mag < p.theta {
			p.trainWeights(cp, taken)
			p.adaptTheta(cp.pred != taken, mag)
		}
	}
	p.class.Update(pc, taken)

	// History management: the filtered structure tracks non-biased
	// branches only; the unfiltered history tracks everything.
	p.seq++
	if p.rstack != nil {
		p.rstack.Tick()
	}
	if p.class.Lookup(pc) == bst.NonBiased {
		p.pushFiltered(pc, taken)
	}
	p.folds.Push(history.Entry{HashedPC: uint32(rng.Hash64(pc >> 2)), Taken: taken})
}

// Update implements sim.Predictor (Algorithm 3).
func (p *Predictor) Update(pc uint64, taken bool, target uint64) {
	var cp checkpoint
	if p.pendStart < len(p.pending) && p.pending[p.pendStart].pc == pc {
		cp = p.pending[p.pendStart]
		p.pendStart++
		if p.pendStart == len(p.pending) {
			p.pending = p.pending[:0]
			p.pendStart = 0
		}
	} else {
		cp = p.newCheckpoint(pc, p.class.Lookup(pc))
		if cp.state == bst.NonBiased {
			p.compute(pc, &cp)
			cp.pred = cp.accum >= 0
		}
		cp.final = cp.pred
	}
	p.commit(&cp, taken)
	p.putCheckpoint(&cp)
}

// step runs one fused predict+update against a persistent scratch
// checkpoint, skipping the in-flight FIFO and the slice pool — valid
// exactly when no prediction is outstanding, which SimulateBatch
// guarantees.
func (p *Predictor) step(pc uint64, taken bool) bool {
	cp := &p.scratch
	cp.pc = pc
	cp.state = p.class.Lookup(pc)
	cp.loopPred, cp.loopOK, cp.loopApplied = false, false, false
	p.lookup(cp)
	p.commit(cp, taken)
	return cp.final
}

// SimulateBatch implements sim.BatchSimulator: a span of records runs
// through the fused per-branch step, bit-exact with Predict+Update per
// record. Falls back to the canonical pair while checkpoints are in
// flight (a delayed-update queue drained mid-run).
func (p *Predictor) SimulateBatch(recs []trace.Record, preds []bool) {
	if p.pendStart < len(p.pending) {
		for i := range recs {
			preds[i] = p.Predict(recs[i].PC)
			p.Update(recs[i].PC, recs[i].Taken, recs[i].Target)
		}
		return
	}
	for i := range recs {
		preds[i] = p.step(recs[i].PC, recs[i].Taken)
	}
}

func (p *Predictor) pushFiltered(pc uint64, taken bool) {
	if p.cfg.RSDepth == 0 {
		return
	}
	hpc := uint32(rng.Hash64(pc>>2) & 0x3FFF) // 14-bit hashed address
	if p.rstack != nil {
		// Recency stack: move-to-front on hit (Fig. 3), O(1).
		p.rstack.Push(uint64(hpc), taken)
		return
	}
	// Shift in; drop the deepest when full.
	if len(p.filt) < p.cfg.RSDepth {
		p.filt = append(p.filt, fentry{})
	}
	copy(p.filt[1:], p.filt[:len(p.filt)-1])
	p.filt[0] = fentry{hpc: hpc, taken: taken, seq: p.seq}
}

func (p *Predictor) trainWeights(cp *checkpoint, taken bool) {
	bi := (cp.pc >> 2) & p.biasMask
	p.wb[bi] = satUpdate8(p.wb[bi], taken)
	for i, row := range cp.wmRows {
		if row < 0 {
			continue
		}
		p.wm[row] = satUpdate6(p.wm[row], taken == cp.wmDirs[i])
	}
	for i, idx := range cp.wrsIdxs {
		p.wrs[idx] = satUpdate6(p.wrs[idx], taken == cp.wrsDirs[i])
	}
}

func (p *Predictor) adaptTheta(mispred bool, mag int32) {
	if mispred {
		p.tc++
		if p.tc >= 16 {
			p.theta++
			p.tc = 0
		}
	} else if mag <= p.theta {
		p.tc--
		if p.tc <= -16 {
			if p.theta > 4 {
				p.theta--
			}
			p.tc = 0
		}
	}
}

func satUpdate6(w int8, up bool) int8 {
	if up {
		if w < wMax {
			return w + 1
		}
		return w
	}
	if w > wMin {
		return w - 1
	}
	return w
}

func satUpdate8(w int8, up bool) int8 {
	if up {
		if w < 127 {
			return w + 1
		}
		return w
	}
	if w > -128 {
		return w - 1
	}
	return w
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

func clamp32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Classifier exposes the BST (for tests and analysis tools).
func (p *Predictor) Classifier() bst.Classifier { return p.class }

// Theta exposes the adaptive threshold (for tests).
func (p *Predictor) Theta() int32 { return p.theta }

// FilteredLen exposes the live filtered-history length (for tests).
func (p *Predictor) FilteredLen() int {
	if p.rstack != nil {
		return p.rstack.Len()
	}
	return len(p.filt)
}

// explainTopWeights is the number of contributions Explain reports.
const explainTopWeights = 8

// Explain implements sim.Explainer. The component reflects the BST
// gate: biased and not-yet-seen branches report "bias-filter" with
// FilterDecision set (the paper's biased-skip path), non-biased branches
// report the perceptron sum against theta with the strongest Wm/Wrs
// contributions (position 0 = bias weight, 1..RecentUnfiltered = Wm
// history positions, beyond that = recency-stack slots).
func (p *Predictor) Explain(pc uint64) sim.Provenance {
	var cp checkpoint
	found := false
	for j := len(p.pending) - 1; j >= p.pendStart; j-- {
		if p.pending[j].pc == pc {
			cp = p.pending[j]
			found = true
			break
		}
	}
	if !found {
		cp = p.newCheckpoint(pc, p.class.Lookup(pc))
		// Not in flight: retire the scratch checkpoint on exit (prov only
		// copies values out of it).
		defer p.putCheckpoint(&cp)
		switch cp.state {
		case bst.NotFound:
			cp.pred = p.cfg.NotFoundPrediction
		case bst.Taken:
			cp.pred = true
		case bst.NotTaken:
			cp.pred = false
		default:
			p.compute(pc, &cp)
			cp.pred = cp.accum >= 0
		}
		cp.final = cp.pred
	}
	prov := sim.Provenance{
		Predictor:  p.Name(),
		Prediction: cp.final,
		BiasState:  cp.state.String(),
	}
	switch {
	case cp.loopApplied:
		prov.Component = "loop"
		// The loop predictor only overrides at full confidence.
		prov.Confidence = 7
	case cp.state == bst.NonBiased:
		prov.Component = "perceptron"
		mag := cp.accum
		if mag < 0 {
			mag = -mag
		}
		prov.Confidence = mag
		prov.Threshold = p.theta
		ht := p.cfg.RecentUnfiltered
		ws := make([]sim.WeightContrib, 0, len(cp.wmRows)+len(cp.wrsIdxs)+1)
		ws = append(ws, sim.WeightContrib{Position: 0, Weight: int32(p.wb[(pc>>2)&p.biasMask])})
		for i, row := range cp.wmRows {
			if row < 0 {
				continue
			}
			w := int32(p.wm[row])
			if !cp.wmDirs[i] {
				w = -w
			}
			ws = append(ws, sim.WeightContrib{Position: i + 1, Weight: w})
		}
		for j, idx := range cp.wrsIdxs {
			w := int32(p.wrs[idx])
			if !cp.wrsDirs[j] {
				w = -w
			}
			ws = append(ws, sim.WeightContrib{Position: ht + 1 + j, Weight: w})
		}
		prov.TopWeights = sim.TopWeightContribs(ws, explainTopWeights)
	default:
		prov.Component = "bias-filter"
		prov.Confidence = 1
		prov.FilterDecision = true
	}
	return prov
}

// Storage implements sim.StorageAccounter. Wm and Wrs weights are 6-bit,
// bias weights 8-bit, RS entries carry a 14-bit hashed address, outcome
// bit, and pos_hist field.
func (p *Predictor) Storage() sim.Breakdown {
	b := sim.Breakdown{Name: p.Name()}
	b.Components = append(b.Components,
		sim.Component{Name: "BST", Bits: p.class.StorageBits()},
		sim.Component{Name: "bias weights Wb (8-bit)", Bits: 8 * len(p.wb)},
		sim.Component{Name: "recent table Wm (6-bit)", Bits: 6 * len(p.wm)},
		sim.Component{Name: "RS table Wrs (6-bit)", Bits: 6 * len(p.wrs)},
		sim.Component{Name: "recency stack", Bits: p.cfg.RSDepth * (14 + 1 + p.cfg.DistBits)},
		sim.Component{Name: "unfiltered history+folds", Bits: 4096 + len(foldLengths())*p.cfg.FoldWidth},
	)
	if p.loop != nil {
		b.Components = append(b.Components, sim.Component{Name: "loop predictor", Bits: p.loop.StorageBits()})
	}
	return b
}

// ProbeState implements sim.StateProbe: weight profiles for Wb (8-bit
// clamps) and Wm/Wrs (6-bit clamps), the BST's classification census,
// and the recency structure's fill (the rs.Stack in ModeFull, the
// filtered shift register otherwise).
func (p *Predictor) ProbeState() sim.TableStats {
	ts := sim.TableStats{
		Predictor: p.Name(),
		Weights: []sim.WeightStats{
			sim.WeightArrayStats(0, "wb", 0, p.wb, -128, 127),
			sim.WeightArrayStats(1, "wm", p.cfg.RecentUnfiltered, p.wm, wMin, wMax),
			sim.WeightArrayStats(2, "wrs", 0, p.wrs, wMin, wMax),
		},
	}
	if tbl, ok := p.class.(*bst.Table); ok {
		counts := tbl.StateCounts()
		ts.Banks = append(ts.Banks, sim.BankStats{
			Bank:      0,
			Kind:      "bst",
			Entries:   tbl.Entries(),
			Live:      tbl.Entries() - counts[bst.NotFound],
			UsefulSet: counts[bst.NonBiased],
		})
	}
	if p.rstack != nil {
		ts.Recency = append(ts.Recency, sim.RecencyStats{
			Segment: 0, Size: p.rstack.Depth(), Live: p.rstack.Len(),
		})
	} else if p.cfg.RSDepth > 0 {
		ts.Recency = append(ts.Recency, sim.RecencyStats{
			Segment: 0, Size: p.cfg.RSDepth, Live: len(p.filt),
		})
	}
	return ts
}

var (
	_ sim.Predictor        = (*Predictor)(nil)
	_ sim.StorageAccounter = (*Predictor)(nil)
	_ sim.Explainer        = (*Predictor)(nil)
	_ sim.StateProbe       = (*Predictor)(nil)
)
