package bfneural

import (
	"testing"

	"bfbp/internal/bst"
	"bfbp/internal/rng"
	"bfbp/internal/sim"
	"bfbp/internal/trace"
)

func smallCfg() Config {
	return Config{
		Mode:             ModeFull,
		BSTEntries:       1 << 12,
		BiasEntries:      1 << 10,
		WmRows:           1 << 9,
		RecentUnfiltered: 12,
		WrsEntries:       1 << 13,
		RSDepth:          32,
		DistBits:         12,
		LoopPredictor:    true,
	}
}

func TestBiasedBranchesPerfectAfterWarmup(t *testing.T) {
	p := New(smallCfg())
	recs := make(trace.Slice, 30000)
	for i := range recs {
		pc := uint64(0x1000 + (i%64)*4)
		recs[i] = trace.Record{PC: pc, Taken: pc%8 != 0, Instret: 5}
	}
	st, err := sim.Run(p, recs.Stream(), sim.Options{Warmup: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if st.MispredictRate() > 0.001 {
		t.Fatalf("biased stream rate = %.5f, want ~0 (BST should predict all)", st.MispredictRate())
	}
}

// deepCorrTrace: source branch, `distance` biased pad branches, then a
// target equal to the source. The pads keep the non-biased footprint tiny,
// so the recency stack holds the source across any distance.
func deepCorrTrace(seed uint64, n, distance, padSites int) trace.Slice {
	r := rng.New(seed)
	var recs trace.Slice
	for len(recs) < n {
		a := r.Bool(0.5)
		recs = append(recs, trace.Record{PC: 0x100, Taken: a, Instret: 5})
		for i := 0; i < distance; i++ {
			pc := uint64(0x10000 + (i%padSites)*4)
			recs = append(recs, trace.Record{PC: pc, Taken: true, Instret: 5})
		}
		recs = append(recs, trace.Record{PC: 0x900, Taken: a, Instret: 5})
	}
	return recs
}

func rateOf(t *testing.T, st sim.Stats, pc uint64) float64 {
	t.Helper()
	for _, o := range st.TopOffenders(30) {
		if o.PC == pc {
			return float64(o.Mispredicts) / float64(o.Count)
		}
	}
	return 0
}

func TestCapturesVeryDistantCorrelation(t *testing.T) {
	// Distance 800, far beyond any 64-128 deep unfiltered history. The
	// headline claim: BF-Neural reaches ~2000 branches with a 64-entry
	// stack because the pads are biased and filtered out.
	tr := deepCorrTrace(1, 300000, 800, 61)
	p := New(smallCfg())
	st, err := sim.Run(p, tr.Stream(), sim.Options{Warmup: 60000, PerPC: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rateOf(t, st, 0x900)
	t.Logf("distance-800 target rate: %.4f", r)
	if r > 0.10 {
		t.Fatalf("BF-Neural failed a distance-800 correlation through biased pads: rate %.3f", r)
	}
}

func TestAblationOrdering(t *testing.T) {
	// The Fig. 9 staircase on a workload with (a) biased pads and (b)
	// repeat-flooded non-biased pads: filtering history beats filtering
	// weights only; adding the RS beats both.
	r := rng.New(7)
	var recs trace.Slice
	toggles := [4]bool{}
	for len(recs) < 400000 {
		a := r.Bool(0.5)
		recs = append(recs, trace.Record{PC: 0x100, Taken: a, Instret: 5})
		// 120 pads: biased sites, plus every 3rd a repeat of 4 alternating
		// non-biased sites (floods a dup-keeping filtered history of
		// depth 32: 40 non-biased instances > 32).
		for i := 0; i < 120; i++ {
			if i%3 == 2 {
				j := i % 4
				pc := uint64(0x20000 + j*4)
				recs = append(recs, trace.Record{PC: pc, Taken: toggles[j], Instret: 5})
				toggles[j] = !toggles[j]
			} else {
				pc := uint64(0x10000 + (i%40)*4)
				recs = append(recs, trace.Record{PC: pc, Taken: true, Instret: 5})
			}
		}
		recs = append(recs, trace.Record{PC: 0x900, Taken: a, Instret: 5})
	}
	run := func(mode Mode) float64 {
		cfg := smallCfg()
		cfg.Mode = mode
		if mode == ModeFilterWeights {
			cfg.RecentUnfiltered = 72
			cfg.RSDepth = 0
		}
		st, err := sim.Run(New(cfg), recs.Stream(), sim.Options{Warmup: 100000, PerPC: true})
		if err != nil {
			t.Fatal(err)
		}
		return rateOf(t, st, 0x900)
	}
	fw := run(ModeFilterWeights)
	gh := run(ModeBiasFreeGHR)
	full := run(ModeFull)
	t.Logf("target rates: filter-weights %.3f, ghist %.3f, full RS %.3f", fw, gh, full)
	if full > 0.10 {
		t.Errorf("full BF-Neural rate = %.3f, want < 0.10", full)
	}
	if full >= fw {
		t.Errorf("RS mode (%.3f) should beat filter-weights mode (%.3f)", full, fw)
	}
	if full >= gh {
		t.Errorf("RS mode (%.3f) should beat dup-keeping ghist mode (%.3f)", full, gh)
	}
}

func TestPositionalHistoryFig4(t *testing.T) {
	// The paper's Fig. 4 pattern: X is taken only on iteration p of the
	// loop and only when A was taken. With pos_hist, each X instance sees
	// a distinguishable distance to A.
	r := rng.New(9)
	const loopCount, pIdx = 20, 7
	var recs trace.Slice
	for len(recs) < 300000 {
		a := r.Bool(0.5)
		recs = append(recs, trace.Record{PC: 0x100, Taken: a, Instret: 5})
		for i := 0; i < loopCount; i++ {
			recs = append(recs, trace.Record{PC: 0x200, Taken: a && i == pIdx, Instret: 5})
			recs = append(recs, trace.Record{PC: 0x204, Taken: i != loopCount-1, Instret: 5})
		}
	}
	p := New(smallCfg())
	st, err := sim.Run(p, recs.Stream(), sim.Options{Warmup: 60000, PerPC: true})
	if err != nil {
		t.Fatal(err)
	}
	r200 := rateOf(t, st, 0x200)
	t.Logf("Fig. 4 branch X rate: %.4f", r200)
	// X is taken 1/40 of the time; always predicting not-taken gives
	// 0.025. The positional history should do clearly better than 0.025
	// by catching the taken instance.
	if r200 > 0.02 {
		t.Errorf("branch X rate = %.4f, want < 0.02 (pos_hist should separate instances)", r200)
	}
}

func TestBSTTransitionTrainsWeights(t *testing.T) {
	// A branch biased for a long stretch then revealing non-bias: the
	// predictor must transition it and keep predicting sensibly.
	p := New(smallCfg())
	var recs trace.Slice
	for i := 0; i < 5000; i++ {
		recs = append(recs, trace.Record{PC: 0x300, Taken: true, Instret: 5})
	}
	// Now alternate.
	for i := 0; i < 20000; i++ {
		recs = append(recs, trace.Record{PC: 0x300, Taken: i%2 == 0, Instret: 5})
	}
	st, err := sim.Run(p, recs.Stream(), sim.Options{Warmup: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if p.Classifier().Lookup(0x300) != bst.NonBiased {
		t.Fatal("branch should be classified NonBiased after both directions")
	}
	// Alternation is learnable from the unfiltered recent history.
	if st.MispredictRate() > 0.05 {
		t.Errorf("post-transition rate = %.4f, want < 0.05", st.MispredictRate())
	}
}

func TestOracleClassifierPluggable(t *testing.T) {
	// With a static oracle, a phase-flipping biased branch never pollutes
	// the weights: compare dynamic vs oracle on a phase workload.
	mk := func() trace.Slice {
		var recs trace.Slice
		r := rng.New(3)
		for len(recs) < 150000 {
			// Phase branch: biased per 3000-instance phase.
			phase := (len(recs) / 9000) % 2
			recs = append(recs, trace.Record{PC: 0x400, Taken: phase == 0, Instret: 5})
			a := r.Bool(0.5)
			recs = append(recs, trace.Record{PC: 0x100, Taken: a, Instret: 5})
			recs = append(recs, trace.Record{PC: 0x104, Taken: true, Instret: 5})
			recs = append(recs, trace.Record{PC: 0x900, Taken: a, Instret: 5})
		}
		return recs
	}
	oracle := bst.NewOracle()
	for _, rec := range mk() {
		oracle.Observe(rec.PC, rec.Taken)
	}
	cfg := smallCfg()
	cfg.Classifier = oracle
	st, err := sim.Run(New(cfg), mk().Stream(), sim.Options{Warmup: 30000})
	if err != nil {
		t.Fatal(err)
	}
	dynSt, err := sim.Run(New(smallCfg()), mk().Stream(), sim.Options{Warmup: 30000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("phase workload MPKI: oracle %.3f, dynamic %.3f", st.MPKI(), dynSt.MPKI())
	if st.MispredictRate() > dynSt.MispredictRate()+0.01 {
		t.Errorf("oracle (%.4f) should not lose to dynamic (%.4f)",
			st.MispredictRate(), dynSt.MispredictRate())
	}
}

func TestDeterminism(t *testing.T) {
	tr := deepCorrTrace(11, 50000, 100, 17)
	a, _ := sim.Run(New(smallCfg()), tr.Stream(), sim.Options{})
	b, _ := sim.Run(New(smallCfg()), tr.Stream(), sim.Options{})
	if a.Mispredicts != b.Mispredicts {
		t.Fatalf("non-deterministic: %d vs %d", a.Mispredicts, b.Mispredicts)
	}
}

func TestDefaultBudget(t *testing.T) {
	p := New(Default64KB())
	bytes := p.Storage().TotalBytes()
	if bytes < 50*1024 || bytes > 75*1024 {
		t.Fatalf("Default64KB = %d bytes, want ~64KB", bytes)
	}
	p32 := New(Default32KB())
	b32 := p32.Storage().TotalBytes()
	if b32 >= bytes || b32 > 45*1024 {
		t.Fatalf("Default32KB = %d bytes, want ~32KB (< 64KB build)", b32)
	}
}

func TestRecencyStackUniqueInFullMode(t *testing.T) {
	p := New(smallCfg())
	r := rng.New(5)
	for i := 0; i < 20000; i++ {
		pc := uint64(0x100 + (i%6)*4) // 6 alternating branches
		taken := r.Bool(0.5)
		p.Predict(pc)
		p.Update(pc, taken, 0)
	}
	if p.FilteredLen() > 6 {
		t.Fatalf("recency stack holds %d entries for 6 distinct PCs", p.FilteredLen())
	}
}

func TestValidation(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{BSTEntries: 100, BiasEntries: 64, WmRows: 64, WrsEntries: 64, RecentUnfiltered: 4, RSDepth: 4},
		{BSTEntries: 64, BiasEntries: 64, WmRows: 64, WrsEntries: 64},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestAheadPipelinedTradeoff(t *testing.T) {
	// The §VIII ahead-pipelined variant drops the PC from the weight-row
	// hashes. It must remain a functional predictor — clearly better than
	// static — and the accuracy cost relative to the full design should
	// be bounded.
	r := rng.New(21)
	var recs trace.Slice
	for len(recs) < 200000 {
		a := r.Bool(0.5)
		recs = append(recs, trace.Record{PC: 0x100, Taken: a, Instret: 5})
		for i := 0; i < 30; i++ {
			pc := uint64(0x10000 + (i%12)*4)
			recs = append(recs, trace.Record{PC: pc, Taken: true, Instret: 5})
		}
		recs = append(recs, trace.Record{PC: 0x900, Taken: a, Instret: 5})
	}
	full, err := sim.Run(New(smallCfg()), recs.Stream(), sim.Options{Warmup: 20000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.AheadPipelined = true
	ahead, err := sim.Run(New(cfg), recs.Stream(), sim.Options{Warmup: 20000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rate: full %.4f, ahead-pipelined %.4f", full.MispredictRate(), ahead.MispredictRate())
	if ahead.MispredictRate() > 0.25 {
		t.Errorf("ahead-pipelined rate %.3f too close to useless", ahead.MispredictRate())
	}
	if ahead.MispredictRate() > full.MispredictRate()*4+0.02 {
		t.Errorf("ahead-pipelined cost too extreme: %.4f vs %.4f",
			ahead.MispredictRate(), full.MispredictRate())
	}
}
