// Snapshot support (bfbp.state.v1). Mutable state: the BST, the three
// weight tables (Wb, Wm, Wrs), the unfiltered history fold set and the
// committed-branch counter, the filtered structure (recency stack or
// shift register, per mode), the loop predictor, and the adaptive
// threshold. The in-flight checkpoint FIFO and its free list are
// transient: snapshots are taken at quiescent points.

package bfneural

import (
	"errors"
	"fmt"
	"io"

	"bfbp/internal/bst"
	"bfbp/internal/sim"
	"bfbp/internal/state"
)

func (p *Predictor) configHash() uint64 {
	h := state.NewHash("bfneural")
	h.String(p.cfg.Name)
	h.Int(int(p.cfg.Mode))
	h.Int(p.cfg.BSTEntries)
	h.String(bst.KindOf(p.class))
	h.Int(p.cfg.BiasEntries)
	h.Int(p.cfg.WmRows)
	h.Int(p.cfg.RecentUnfiltered)
	h.Int(p.cfg.WrsEntries)
	h.Int(p.cfg.RSDepth)
	h.Int(p.cfg.DistBits)
	h.Int(p.cfg.FoldWidth)
	h.Bool(p.cfg.LoopPredictor)
	h.Bool(p.cfg.NotFoundPrediction)
	h.Bool(p.cfg.AheadPipelined)
	return h.Sum()
}

// SaveState implements sim.Snapshotter.
func (p *Predictor) SaveState(w io.Writer) error {
	if len(p.pending) != p.pendStart {
		return errors.New("bfneural: cannot snapshot with in-flight predictions")
	}
	s := state.New(p.Name(), p.configHash())
	if err := bst.SaveClassifier(s.Section("bst"), p.class); err != nil {
		return err
	}
	s.Section("wb").I8s(p.wb)
	s.Section("wm").I8s(p.wm)
	s.Section("wrs").I8s(p.wrs)
	hs := s.Section("history")
	p.folds.SaveState(hs)
	hs.U64(p.seq)
	if p.rstack != nil {
		p.rstack.SaveState(s.Section("rstack"))
	} else {
		fe := s.Section("filt")
		fe.U32(uint32(len(p.filt)))
		for i := range p.filt {
			fe.U32(p.filt[i].hpc)
			fe.Bool(p.filt[i].taken)
			fe.U64(p.filt[i].seq)
		}
	}
	m := s.Section("misc")
	m.I32(p.withLoop)
	m.I32(p.theta)
	m.I32(p.tc)
	if p.loop != nil {
		p.loop.SaveState(s.Section("loop"))
	}
	_, err := s.WriteTo(w)
	return err
}

// LoadState implements sim.Snapshotter.
func (p *Predictor) LoadState(r io.Reader) error {
	s, err := state.Load(r, p.Name(), p.configHash())
	if err != nil {
		return err
	}
	cd, err := s.Dec("bst")
	if err != nil {
		return err
	}
	if err := bst.LoadClassifier(cd, p.class); err != nil {
		return err
	}
	for _, t := range []struct {
		name string
		dst  []int8
	}{{"wb", p.wb}, {"wm", p.wm}, {"wrs", p.wrs}} {
		d, err := s.Dec(t.name)
		if err != nil {
			return err
		}
		got := d.I8s()
		if err := d.Err(); err != nil {
			return err
		}
		if len(got) != len(t.dst) {
			return fmt.Errorf("%w: %s has %d weights, snapshot %d", state.ErrCorrupt, t.name, len(t.dst), len(got))
		}
		copy(t.dst, got)
	}
	hs, err := s.Dec("history")
	if err != nil {
		return err
	}
	if err := p.folds.LoadState(hs); err != nil {
		return err
	}
	p.seq = hs.U64()
	if err := hs.Err(); err != nil {
		return err
	}
	if p.rstack != nil {
		rd, err := s.Dec("rstack")
		if err != nil {
			return err
		}
		if err := p.rstack.LoadState(rd); err != nil {
			return err
		}
	} else {
		fd, err := s.Dec("filt")
		if err != nil {
			return err
		}
		n := int(fd.U32())
		if err := fd.Err(); err != nil {
			return err
		}
		if n > p.cfg.RSDepth {
			return fmt.Errorf("%w: filtered register has %d entries, depth is %d", state.ErrCorrupt, n, p.cfg.RSDepth)
		}
		filt := make([]fentry, n)
		for i := range filt {
			filt[i] = fentry{hpc: fd.U32(), taken: fd.Bool(), seq: fd.U64()}
		}
		if err := fd.Err(); err != nil {
			return err
		}
		p.filt = filt
	}
	m, err := s.Dec("misc")
	if err != nil {
		return err
	}
	p.withLoop = m.I32()
	p.theta = m.I32()
	p.tc = m.I32()
	if err := m.Err(); err != nil {
		return err
	}
	if p.loop != nil {
		ld, err := s.Dec("loop")
		if err != nil {
			return err
		}
		if err := p.loop.LoadState(ld); err != nil {
			return err
		}
	}
	p.pending = p.pending[:0]
	p.pendStart = 0
	return nil
}

var _ sim.Snapshotter = (*Predictor)(nil)
