package bfneural

// Ahead-pipelined BF-Neural: the paper's §VIII sketches the future-work
// implementation — use the ahead-pipelining technique of piecewise-linear
// prediction "in conjunction with not including the branch PC in row
// index computation". Removing the current PC from the weight-row hashes
// lets the accumulator for the *next* branch start several cycles early,
// from history alone; the PC arrives late and only selects among a small
// set of pre-computed sums (here: the bias weight and final thresholding).
//
// This file implements that variant as a Config switch so its accuracy
// cost can be measured (BenchmarkAblationAheadPipelined): the correlating
// hashes lose the PC's disambiguation, so aliasing between branches that
// share history contexts increases — the price of latency tolerance.

// AheadPipelined returns the §VIII ahead-pipelined configuration at the
// 64KB scale: identical to Default64KB except that weight-row indices are
// computed without the current branch PC.
func AheadPipelined() Config {
	c := Default64KB()
	c.AheadPipelined = true
	return c
}
