package bfneural

import (
	"testing"

	"bfbp/internal/trace"
	"bfbp/internal/workload"
)

var benchTrace trace.Slice

func getBenchTrace(b *testing.B) trace.Slice {
	b.Helper()
	if benchTrace == nil {
		for _, s := range workload.Traces() {
			if s.Name == "SPEC03" {
				benchTrace = s.GenerateN(100000)
				break
			}
		}
	}
	if benchTrace == nil {
		b.Skip("SPEC03 workload spec unavailable")
	}
	return benchTrace
}

// BenchmarkPredictUpdate measures the scalar Predict+Update path.
func BenchmarkPredictUpdate(b *testing.B) {
	tr := getBenchTrace(b)
	p := New(Default64KB())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := tr[i%len(tr)]
		p.Predict(rec.PC)
		p.Update(rec.PC, rec.Taken, rec.Target)
	}
}

// BenchmarkSimulateBatch measures the fused batch path the harness uses
// when the hot loop is uninstrumented.
func BenchmarkSimulateBatch(b *testing.B) {
	tr := getBenchTrace(b)
	p := New(Default64KB())
	const batch = 4096
	preds := make([]bool, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if b.N-done < n {
			n = b.N - done
		}
		off := done % (len(tr) - batch)
		p.SimulateBatch(tr[off:off+n], preds[:n])
		done += n
	}
}
