module bfbp

go 1.22
