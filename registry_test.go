package bfbp

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryEntry(t *testing.T) {
	infos := Predictors()
	if len(infos) < 40 {
		t.Fatalf("registry has %d entries, expected the full constructor set", len(infos))
	}
	seen := map[string]bool{}
	for _, info := range infos {
		if seen[info.Name] {
			t.Fatalf("duplicate registry name %q", info.Name)
		}
		seen[info.Name] = true
		if info.Description == "" {
			t.Fatalf("%s: empty description", info.Name)
		}
		p := info.New()
		if p == nil {
			t.Fatalf("%s: constructor returned nil", info.Name)
		}
		if p.Name() == "" {
			t.Fatalf("%s: instance has empty name", info.Name)
		}
		// Fresh instances per call, not a shared singleton.
		if q := info.New(); q == p {
			t.Fatalf("%s: New returned the same instance twice", info.Name)
		}
		// Round trip: every listed name resolves through the lookup path.
		got, err := NewByName(info.Name)
		if err != nil {
			t.Fatalf("NewByName(%s): %v", info.Name, err)
		}
		if got == nil {
			t.Fatalf("NewByName(%s) = nil", info.Name)
		}
	}
	for _, want := range []string{"bf-neural", "oh-snap", "tage-15", "isl-tage-15", "bf-tage-10", "bf-isl-tage-10"} {
		if !seen[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
}

func TestRegistryAliases(t *testing.T) {
	a, err := PredictorByName("bf-neural-64kb")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "bf-neural" {
		t.Fatalf("alias resolved to %q, want bf-neural", a.Name)
	}
}

func TestRegistryRejectsUnknown(t *testing.T) {
	for _, name := range []string{"nope", "tage-", "tage-99", "bf-isl-tage-3", "bf-tage-eleven"} {
		if _, err := NewByName(name); err == nil {
			t.Fatalf("NewByName(%q) should fail", name)
		}
	}
	if _, err := NewByName("tage-99"); err == nil || !strings.Contains(err.Error(), "[1,15]") {
		t.Fatalf("out-of-range error should state bounds, got %v", err)
	}
}

func TestRegistryNamesMatchPredictors(t *testing.T) {
	names := PredictorNames()
	infos := Predictors()
	if len(names) != len(infos) {
		t.Fatalf("names %d != entries %d", len(names), len(infos))
	}
	for i := range names {
		if names[i] != infos[i].Name {
			t.Fatalf("name %d: %q != %q", i, names[i], infos[i].Name)
		}
	}
}

func TestRegistrySpecAdaptsToEngine(t *testing.T) {
	info, err := PredictorByName("gshare")
	if err != nil {
		t.Fatal(err)
	}
	spec := info.Spec()
	if spec.Name != "gshare" || spec.New == nil || spec.New() == nil {
		t.Fatalf("Spec() adaptor broken: %+v", spec)
	}
}
