package bfbp_test

import (
	"strings"
	"testing"

	"bfbp"
)

// TestEveryPredictorProbesState is the tentpole's coverage guard: every
// registry predictor must implement the optional StateProbe interface,
// advertise it as a capability tag, and — after a short training run —
// report real table or weight state (static predictors excepted).
func TestEveryPredictorProbesState(t *testing.T) {
	tr := genTrace(t, "INT1", 20_000)
	for _, info := range bfbp.Predictors() {
		caps := info.Capabilities()
		if caps.StateProbe == nil {
			t.Errorf("%s: no StateProbe", info.Name)
			continue
		}
		found := false
		for _, n := range caps.Names() {
			if n == "state-probe" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: Capabilities().Names() omits \"state-probe\"", info.Name)
		}
		p := info.New()
		if _, err := bfbp.Run(p, tr.Stream(), bfbp.Options{}); err != nil {
			t.Errorf("%s: run: %v", info.Name, err)
			continue
		}
		ts := bfbp.Capabilities(p).StateProbe.ProbeState()
		if ts.Predictor != p.Name() {
			t.Errorf("%s: sample names predictor %q", info.Name, ts.Predictor)
		}
		if strings.HasPrefix(info.Name, "static-") {
			continue
		}
		if len(ts.Banks) == 0 && len(ts.Weights) == 0 {
			t.Errorf("%s: trained sample carries no banks and no weights", info.Name)
			continue
		}
		trained := false
		for _, b := range ts.Banks {
			if b.Entries <= 0 && b.Kind != "" {
				t.Errorf("%s: bank %s has no capacity", info.Name, b.Label())
			}
			if b.Live > b.Entries {
				t.Errorf("%s: bank %s live %d > entries %d", info.Name, b.Label(), b.Live, b.Entries)
			}
			if b.Live > 0 {
				trained = true
			}
		}
		for _, w := range ts.Weights {
			if w.Live > w.Weights || w.Saturated > w.Weights {
				t.Errorf("%s: weights %s live %d / saturated %d out of %d",
					info.Name, w.Name, w.Live, w.Saturated, w.Weights)
			}
			if w.Live > 0 {
				trained = true
			}
		}
		if !trained {
			t.Errorf("%s: nothing live after 20K branches", info.Name)
		}
	}
}

// TestProbeStateBitExact pins the observation-only contract at the
// public API: for a cross-section of predictor families, a run sampled
// every 8192 branches must reproduce the unprobed run's counters
// exactly.
func TestProbeStateBitExact(t *testing.T) {
	tr := genTrace(t, "SERV1", 60_000)
	for _, name := range []string{"bimodal", "yags", "o-gehl", "tage-4", "bf-tage-4", "bf-neural"} {
		p1, err := bfbp.NewByName(name)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := bfbp.Run(p1, tr.Stream(), bfbp.Options{Warmup: 6_000})
		if err != nil {
			t.Fatal(err)
		}
		p2, err := bfbp.NewByName(name)
		if err != nil {
			t.Fatal(err)
		}
		samples := 0
		probed, err := bfbp.Run(p2, tr.Stream(), bfbp.Options{
			Warmup:          6_000,
			ProbeStateEvery: 8192,
			ProbeState:      func(bfbp.TableStats, uint64) { samples++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		if samples == 0 {
			t.Errorf("%s: no state samples fired", name)
		}
		if plain.Branches != probed.Branches || plain.Mispredicts != probed.Mispredicts {
			t.Errorf("%s: probing changed the run: plain %d/%d, probed %d/%d",
				name, plain.Branches, plain.Mispredicts, probed.Branches, probed.Mispredicts)
		}
	}
}
