// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§VI) on the synthetic trace suite, and runs full
// (predictor × trace) suite sweeps on the parallel evaluation engine.
//
// Usage:
//
//	experiments -fig 8                 # one figure
//	experiments -fig 2,8,9,10,11,12    # several
//	experiments -table 1               # Table I storage budget
//	experiments -all                   # everything
//	experiments -fig 8 -csv            # CSV output
//	experiments -fig 8 -traces SPEC00,SPEC03
//	experiments -fig 8 -long 2000000 -short 500000   # full-scale traces
//	experiments -fig 8 -workers 16                   # engine parallelism
//	experiments -suite                               # full matrix, CSV rows
//	experiments -suite -json                         # + windowed MPKI series
//	experiments -suite -preds oh-snap,bf-neural      # registry predictor set
//	experiments -suite -metrics-addr :8080           # live /metrics + /healthz + pprof (watch with bfstat)
//	experiments -suite -journal run.jsonl -heartbeat 10s
//	experiments -suite -trace-out run.trace.json     # Perfetto span timeline
//
// The -long/-short flags set the per-trace dynamic branch counts (the
// paper used 15-30M and 3-5M; defaults here are laptop-scale). Suite
// rows are deterministic: byte-identical output for any -workers value.
// Telemetry (-metrics-addr, -journal, -heartbeat, -trace-out,
// -runtime-trace) observes any run — figures or suite — without
// perturbing its output.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"bfbp"
	"bfbp/internal/experiments"
	"bfbp/internal/prof"
	"bfbp/internal/sim"
	"bfbp/internal/telemetry"
)

func main() {
	var (
		figs          = flag.String("fig", "", "comma-separated figure numbers to regenerate (2,8,9,10,11,12,13)")
		table         = flag.Int("table", 0, "table number to regenerate (1)")
		all           = flag.Bool("all", false, "regenerate every figure and table")
		suite         = flag.Bool("suite", false, "run the full (predictor x trace) suite matrix")
		predNames     = flag.String("preds", "", "registry predictor names for -suite (default: headline set)")
		csv           = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut       = flag.Bool("json", false, "emit -suite results as JSON (includes window series)")
		long          = flag.Int("long", 800_000, "dynamic branches per SPEC trace")
		short         = flag.Int("short", 300_000, "dynamic branches per short trace")
		traces        = flag.String("traces", "", "comma-separated trace subset (default: all 40)")
		workers       = flag.Int("workers", 0, "parallel engine workers (0 = min(GOMAXPROCS, 8))")
		quiet         = flag.Bool("q", false, "suppress progress logging")
		varianceTrace = flag.String("variance", "", "run a seed-variance study on the named trace")
		seeds         = flag.Int("seeds", 5, "seed variants for -variance")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics/history, /healthz, /debug/pprof on this address")
		journalPath = flag.String("journal", "", "write bfbp.journal.v1 JSONL events to this file")
		heartbeat   = flag.Duration("heartbeat", 0, "print an engine-progress line to stderr at this period (0 = off)")
		traceOut    = flag.String("trace-out", "", "write a bfbp.trace.v1 span timeline (Perfetto/chrome://tracing JSON) to this file")
		rtraceOut   = flag.String("runtime-trace", "", "capture a Go runtime/trace (with bridged spans) to this file")
	)
	prof.Flags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	cfg := experiments.Config{
		LongBranches:  *long,
		ShortBranches: *short,
		Workers:       *workers,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	if *traces != "" {
		cfg.TraceFilter = strings.Split(*traces, ",")
	}

	tel, err := telemetry.Start(telemetry.Config{
		MetricsAddr:      *metricsAddr,
		JournalPath:      *journalPath,
		Heartbeat:        *heartbeat,
		TracePath:        *traceOut,
		RuntimeTracePath: *rtraceOut,
	})
	if err != nil {
		fatal(err)
	}
	defer tel.Close()
	cfg.Metrics = tel.EngineMetrics()
	cfg.Journal = tel.RunJournal()
	cfg.Tracer = tel.RunTracer()

	if *suite {
		runSuite(cfg, *predNames, *jsonOut)
		return
	}

	want := map[string]bool{}
	if *all {
		for _, f := range []string{"2", "8", "9", "10", "11", "12", "13"} {
			want[f] = true
		}
		*table = 1
	}
	for _, f := range strings.Split(*figs, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want[f] = true
		}
	}
	if len(want) == 0 && *table == 0 && *varianceTrace == "" {
		flag.Usage()
		os.Exit(2)
	}

	emit := func(t experiments.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}

	if want["2"] {
		emit(experiments.Fig2(cfg))
	}
	if want["8"] {
		emit(experiments.Fig8(cfg))
	}
	if want["9"] {
		emit(experiments.Fig9(cfg))
	}
	if want["10"] {
		emit(experiments.Fig10(cfg))
	}
	if want["11"] {
		emit(experiments.Fig11(cfg))
	}
	if want["12"] {
		names := experiments.Fig12Traces
		if len(cfg.TraceFilter) > 0 {
			names = cfg.TraceFilter
		}
		for _, name := range names {
			emit(experiments.Fig12(cfg, name))
		}
	}
	if want["13"] {
		emit(experiments.Fig13(cfg))
	}
	if *varianceTrace != "" {
		emit(experiments.Variance(cfg, *varianceTrace, *seeds))
	}
	if *table == 1 {
		fmt.Println("Table I: storage budget of the 10-table BF-TAGE")
		fmt.Print(experiments.Table1().String())
		fmt.Printf("(paper total: 51100 bytes)\n\n")
	}
}

// runSuite executes the full suite matrix on the engine and emits the
// shared CSV/JSON result format. Ctrl-C cancels the sweep cleanly.
func runSuite(cfg experiments.Config, predNames string, jsonOut bool) {
	preds := experiments.SuitePredictors()
	if predNames != "" {
		infos, err := bfbp.SelectPredictors(predNames)
		if err != nil {
			fatal(err)
		}
		preds = preds[:0]
		for _, info := range infos {
			preds = append(preds, info.Spec())
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := experiments.Suite(ctx, cfg, preds)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		err = sim.WriteJSON(os.Stdout, results)
	} else {
		err = sim.WriteCSV(os.Stdout, results)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
