// Command tracegen writes the synthetic benchmark traces to disk in the
// BFT1 binary format, so they can be replayed with bfsim -f or inspected
// by other tools.
//
// Usage:
//
//	tracegen -o traces/                    # all 40 traces at default size
//	tracegen -t SPEC03,SERV1 -o traces/    # a subset
//	tracegen -t SPEC03 -n 2000000 -o .     # explicit length
//	tracegen -list                         # print trace names and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bfbp"
	"bfbp/internal/trace"
	"bfbp/internal/workload"
)

func main() {
	var (
		out   = flag.String("o", ".", "output directory")
		names = flag.String("t", "", "comma-separated trace names (default: all 40)")
		n     = flag.Int("n", 0, "dynamic branches per trace (0 = family default)")
		list  = flag.Bool("list", false, "list trace names and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range bfbp.Traces() {
			fmt.Printf("%-8s %-5s default %d branches\n", s.Name, s.Family, s.Branches)
		}
		return
	}

	specs := bfbp.Traces()
	if *names != "" {
		var subset []workload.Spec
		for _, name := range strings.Split(*names, ",") {
			s, ok := bfbp.TraceByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown trace %q", name))
			}
			subset = append(subset, s)
		}
		specs = subset
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, s := range specs {
		count := s.Branches
		if *n > 0 {
			count = *n
		}
		path := filepath.Join(*out, s.Name+".bft")
		if err := writeTrace(path, s, count); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d branches)\n", path, count)
	}
}

func writeTrace(path string, s workload.Spec, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := trace.NewWriter(f)
	for _, rec := range s.GenerateN(n) {
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
