// Command bfstat is a live terminal console for a running bfbp process
// (bfsim, experiments, bench, or analyze started with -metrics-addr).
// It polls /debug/vars, /metrics/history, and /healthz and renders
// engine throughput with a sparkline, per-predictor MPKI, worker and
// queue state, latency quantiles, runtime health, the drift-detector
// panel (when the process runs with -drift), and the health-rule
// report — a top(1) for suite runs, with no dependencies beyond the
// stdlib.
//
// Usage:
//
//	bfstat                                  # poll localhost:8080 every second
//	bfstat -addr 127.0.0.1:9377 -interval 2s
//	bfstat -once                            # one frame; exit 1 if unhealthy
//	bfstat -once -require-quantiles         # also fail if no latency quantiles yet
//	bfstat -wait 10s -once                  # wait for the endpoint to come up
//	bfstat -get /healthz                    # dump one raw endpoint (curl substitute)
//
// -once doubles as a CI probe: after rendering the frame it exits
// non-zero when /healthz reports state "unhealthy", so a pipeline step
// can assert a run finished with its health rules green.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "metrics address of the observed process")
		interval = flag.Duration("interval", time.Second, "poll period")
		once     = flag.Bool("once", false, "render one frame and exit")
		wait     = flag.Duration("wait", 0, "wait up to this long for the endpoint before the first poll")
		requireQ = flag.String("require-quantiles", "", "with -once: comma-separated quantile metric names that must have samples (exit 1 otherwise)")
		get      = flag.String("get", "", "fetch one raw endpoint path (e.g. /healthz) and print the body")
		jsonOut  = flag.Bool("json", false, "with -once: emit the frame as one JSON object (occupancy, health, drift) instead of text")
	)
	flag.Parse()

	c := &client{base: "http://" + *addr, hc: &http.Client{Timeout: 5 * time.Second}}

	if *wait > 0 {
		if err := c.waitUp(*wait); err != nil {
			fatal(err)
		}
	}

	if *get != "" {
		body, _, err := c.fetch(*get)
		if err != nil {
			fatal(err)
		}
		fmt.Print(string(body))
		if !strings.HasSuffix(string(body), "\n") {
			fmt.Println()
		}
		return
	}

	if *once {
		frame, err := c.snapshot()
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(machineFrame(frame, *addr)); err != nil {
				fatal(err)
			}
		} else {
			fmt.Print(render(frame, *addr))
		}
		if *requireQ != "" {
			if err := requireQuantiles(frame.vars, strings.Split(*requireQ, ",")); err != nil {
				fatal(err)
			}
		}
		// A one-shot frame doubles as a CI probe: an unhealthy process
		// fails the check, not just the eye test.
		if frame.health.State == "unhealthy" {
			fatal(fmt.Errorf("process is unhealthy (see health rules above)"))
		}
		return
	}

	for {
		frame, err := c.snapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfstat: %v (retrying)\n", err)
		} else {
			// Clear screen + home, then one frame.
			fmt.Print("\x1b[2J\x1b[H" + render(frame, *addr))
		}
		time.Sleep(*interval)
	}
}

// client polls the three JSON surfaces of one process.
type client struct {
	base string
	hc   *http.Client
}

func (c *client) fetch(path string) ([]byte, int, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}

func (c *client) waitUp(d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		if _, _, err := c.fetch("/debug/vars"); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("endpoint %s not up after %s: %w", c.base, d, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// vars is the decoded /debug/vars document: plain metrics are float64,
// labeled families map label-tuple -> value, quantile series decode to
// map[string]any with count/sum/min/max/p50/p90/p99/p999.
type vars map[string]any

// frame is one consistent poll of the observed process.
type frame struct {
	vars    vars
	history historyDoc
	health  healthDoc
}

type historyDoc struct {
	IntervalSeconds float64 `json:"interval_seconds"`
	Points          []struct {
		UnixMillis int64              `json:"t_ms"`
		Values     map[string]float64 `json:"values"`
	} `json:"points"`
}

type healthDoc struct {
	State string `json:"state"`
	Rules []struct {
		Name     string  `json:"name"`
		Severity string  `json:"severity"`
		Firing   bool    `json:"firing"`
		Value    float64 `json:"value"`
		Limit    float64 `json:"limit"`
		Streak   int     `json:"streak"`
	} `json:"rules"`
}

func (c *client) snapshot() (frame, error) {
	var f frame
	body, _, err := c.fetch("/debug/vars")
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(body, &f.vars); err != nil {
		return f, fmt.Errorf("/debug/vars: %w", err)
	}
	// History and health are optional surfaces (older processes or
	// NewMux without the health layer); their absence degrades the
	// dashboard rather than failing it.
	if body, code, err := c.fetch("/metrics/history"); err == nil && code == 200 {
		_ = json.Unmarshal(body, &f.history)
	}
	if body, code, err := c.fetch("/healthz"); err == nil {
		_ = json.Unmarshal(body, &f.health) // decodes for 200 and 503 alike
		_ = code
	}
	return f, nil
}

// num reads a plain numeric metric, 0 when absent.
func (v vars) num(name string) float64 {
	f, _ := v[name].(float64)
	return f
}

// family reads a labeled family as label-tuple -> raw value.
func (v vars) family(name string) map[string]any {
	m, _ := v[name].(map[string]any)
	return m
}

// qfield reads one field of a quantile snapshot value.
func qfield(raw any, field string) float64 {
	m, _ := raw.(map[string]any)
	f, _ := m[field].(float64)
	return f
}

// render draws one full frame.
func render(f frame, addr string) string {
	var b strings.Builder
	v := f.vars

	state := f.health.State
	if state == "" {
		state = "n/a"
	}
	fmt.Fprintf(&b, "bfstat %s  %s  health=%s\n\n", addr, time.Now().Format("15:04:05"), state)

	// Engine panel.
	runs := v.family("bfbp_engine_runs_total")
	ok, _ := runs["ok"].(float64)
	failed, _ := runs["error"].(float64)
	fmt.Fprintf(&b, "engine   %d workers (%d busy)  queue %d  runs %.0f ok / %.0f failed  branches %s\n",
		int64(v.num("bfbp_engine_workers")), int64(v.num("bfbp_engine_busy_workers")),
		int64(v.num("bfbp_engine_queue_depth")), ok, failed,
		human(v.num("bfbp_engine_branches_total")))

	rates := throughput(f.history)
	if len(rates) > 0 {
		fmt.Fprintf(&b, "rate     %s branches/s  %s\n", human(rates[len(rates)-1]), sparkline(rates))
	}
	b.WriteString("\n")

	// Per-predictor MPKI from the engine counter families.
	mis := v.family("bfbp_engine_mispredicts_total")
	ins := v.family("bfbp_engine_instructions_total")
	if len(mis) > 0 {
		names := make([]string, 0, len(mis))
		for name := range mis {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("predictor        MPKI     mispredicts   run p50      run p99\n")
		runSec := v.family("bfbp_engine_run_seconds")
		for _, name := range names {
			m, _ := mis[name].(float64)
			i, _ := ins[name].(float64)
			mpki := 0.0
			if i > 0 {
				mpki = 1000 * m / i
			}
			fmt.Fprintf(&b, "%-14s %7.3f  %12s   %-10s   %-10s\n", name, mpki, human(m),
				secs(qfield(runSec[name], "p50")), secs(qfield(runSec[name], "p99")))
		}
		b.WriteString("\n")
	}

	// Harness and span latency quantiles.
	b.WriteString("latency             p50        p99        p999       samples\n")
	for _, q := range []struct{ label, metric string }{
		{"harness predict", "bfbp_harness_predict_seconds"},
		{"harness update", "bfbp_harness_update_seconds"},
	} {
		raw := v[q.metric]
		fmt.Fprintf(&b, "%-17s %-10s %-10s %-10s %.0f\n", q.label,
			secs(qfield(raw, "p50")), secs(qfield(raw, "p99")), secs(qfield(raw, "p999")),
			qfield(raw, "count"))
	}
	if spans := v.family("bfbp_span_seconds"); len(spans) > 0 {
		kinds := make([]string, 0, len(spans))
		for k := range spans {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(&b, "%-17s %-10s %-10s %-10s %.0f\n", "span "+k,
				secs(qfield(spans[k], "p50")), secs(qfield(spans[k], "p99")),
				secs(qfield(spans[k], "p999")), qfield(spans[k], "count"))
		}
	}
	b.WriteString("\n")

	// Runtime panel.
	gc := v.family("bfbp_runtime_gc_pause_seconds")
	lat := v.family("bfbp_runtime_sched_latency_seconds")
	gcP99, _ := gc["0.99"].(float64)
	latP99, _ := lat["0.99"].(float64)
	fmt.Fprintf(&b, "runtime  heap %s  goroutines %d  gc cycles %d  gc p99 %s  sched p99 %s\n",
		human(v.num("bfbp_runtime_heap_bytes")), int64(v.num("bfbp_runtime_goroutines")),
		int64(v.num("bfbp_runtime_gc_cycles_total")), secs(gcP99), secs(latP99))

	// Table-state panel: per-bank occupancy, tag conflicts, and weight
	// saturation, present only when the observed process runs with
	// -probe-state.
	occ := v.family("bfbp_table_occupancy")
	if len(occ) > 0 {
		conflicts := v.family("bfbp_tag_conflicts_total")
		wsat := v.family("bfbp_weight_saturation")
		b.WriteString("\ntable state (occupancy by bank)\n")
		for _, pred := range seriesPredictors(occ) {
			fmt.Fprintf(&b, " %-16s", pred)
			for _, bank := range seriesOf(occ, pred) {
				val, _ := occ[pred+","+bank].(float64)
				fmt.Fprintf(&b, " %s %.0f%%", bank, 100*val)
			}
			if total := predictorSum(conflicts, pred); total > 0 {
				fmt.Fprintf(&b, "  | conflicts %.0f", total)
			}
			b.WriteString("\n")
			if banks := seriesOf(wsat, pred); len(banks) > 0 {
				fmt.Fprintf(&b, " %-16s", "  weight sat")
				for _, name := range banks {
					val, _ := wsat[pred+","+name].(float64)
					fmt.Fprintf(&b, " %s %.1f%%", name, 100*val)
				}
				b.WriteString("\n")
			}
		}
	}

	// Drift panel: change-point detector state and alarms, present only
	// when the observed process runs with -drift.
	baselines := v.family("bfbp_drift_baseline")
	if len(baselines) > 0 {
		alarms := v.family("bfbp_drift_alarms_total")
		scores := v.family("bfbp_drift_score")
		series := make([]string, 0, len(baselines))
		for s := range baselines {
			series = append(series, s)
		}
		sort.Strings(series)
		fmt.Fprintf(&b, "\ndrift    %d series watched  %.0f alarms  %.0f flight dumps\n",
			len(series), sum(alarms), v.num("bfbp_flight_dumps_total"))
		for _, s := range series {
			base, _ := baselines[s].(float64)
			score, _ := scores[s].(float64)
			fired, _ := alarms[s].(float64)
			mark := "  "
			if fired > 0 {
				mark = "!!"
			}
			fmt.Fprintf(&b, " %s %-40s baseline %10.3f  score %6.3f  alarms %.0f\n",
				mark, s, base, score, fired)
		}
	}

	// Health rules.
	if len(f.health.Rules) > 0 {
		b.WriteString("\nhealth rules\n")
		for _, r := range f.health.Rules {
			mark := "  "
			if r.Firing {
				mark = "!!"
			}
			fmt.Fprintf(&b, " %s %-20s %-9s value %-12g limit %-12g streak %d\n",
				mark, r.Name, r.Severity, r.Value, r.Limit, r.Streak)
		}
	}
	return b.String()
}

// seriesPredictors lists the distinct predictors (first label of the
// "predictor,series" key) of a labeled family, sorted.
func seriesPredictors(fam map[string]any) []string {
	seen := map[string]bool{}
	for key := range fam {
		pred, _ := splitSeries(key)
		seen[pred] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// seriesOf lists the second-label values a predictor has in a family,
// sorted.
func seriesOf(fam map[string]any, pred string) []string {
	var out []string
	for key := range fam {
		if p, rest := splitSeries(key); p == pred && rest != "" {
			out = append(out, rest)
		}
	}
	sort.Strings(out)
	return out
}

// splitSeries splits a "predictor,series" family key at the first comma.
func splitSeries(key string) (pred, rest string) {
	if i := strings.Index(key, ","); i >= 0 {
		return key[:i], key[i+1:]
	}
	return key, ""
}

// predictorSum totals a family's series belonging to one predictor.
func predictorSum(fam map[string]any, pred string) float64 {
	var total float64
	for key, raw := range fam {
		if p, _ := splitSeries(key); p == pred {
			if v, ok := raw.(float64); ok {
				total += v
			}
		}
	}
	return total
}

// machineFrame reduces one poll to the `bfstat -once -json` document:
// engine counters, per-predictor MPKI, the state-probe panels, drift
// detectors, and health — one JSON object a pipeline can assert on.
type machineDoc struct {
	Addr   string             `json:"addr"`
	Engine map[string]float64 `json:"engine"`
	MPKI   map[string]float64 `json:"mpki,omitempty"`
	// Occupancy and WeightSaturation map "predictor,series" keys to the
	// latest gauge values; TagConflicts carries the cumulative counters.
	Occupancy        map[string]float64 `json:"occupancy,omitempty"`
	TagConflicts     map[string]float64 `json:"tag_conflicts,omitempty"`
	WeightSaturation map[string]float64 `json:"weight_saturation,omitempty"`
	Drift            []driftSeries      `json:"drift,omitempty"`
	Health           healthDoc          `json:"health"`
}

type driftSeries struct {
	Series   string  `json:"series"`
	Baseline float64 `json:"baseline"`
	Score    float64 `json:"score"`
	Alarms   float64 `json:"alarms"`
}

func machineFrame(f frame, addr string) machineDoc {
	v := f.vars
	runs := v.family("bfbp_engine_runs_total")
	ok, _ := runs["ok"].(float64)
	failed, _ := runs["error"].(float64)
	out := machineDoc{
		Addr: addr,
		Engine: map[string]float64{
			"workers":      v.num("bfbp_engine_workers"),
			"busy_workers": v.num("bfbp_engine_busy_workers"),
			"queue_depth":  v.num("bfbp_engine_queue_depth"),
			"runs_ok":      ok,
			"runs_failed":  failed,
			"branches":     v.num("bfbp_engine_branches_total"),
		},
		Occupancy:        floatFamily(v.family("bfbp_table_occupancy")),
		TagConflicts:     floatFamily(v.family("bfbp_tag_conflicts_total")),
		WeightSaturation: floatFamily(v.family("bfbp_weight_saturation")),
		Health:           f.health,
	}
	mis, ins := v.family("bfbp_engine_mispredicts_total"), v.family("bfbp_engine_instructions_total")
	for name, raw := range mis {
		m, _ := raw.(float64)
		if i, _ := ins[name].(float64); i > 0 {
			if out.MPKI == nil {
				out.MPKI = map[string]float64{}
			}
			out.MPKI[name] = 1000 * m / i
		}
	}
	baselines := v.family("bfbp_drift_baseline")
	scores, alarms := v.family("bfbp_drift_score"), v.family("bfbp_drift_alarms_total")
	series := make([]string, 0, len(baselines))
	for s := range baselines {
		series = append(series, s)
	}
	sort.Strings(series)
	for _, s := range series {
		base, _ := baselines[s].(float64)
		score, _ := scores[s].(float64)
		fired, _ := alarms[s].(float64)
		out.Drift = append(out.Drift, driftSeries{Series: s, Baseline: base, Score: score, Alarms: fired})
	}
	return out
}

// floatFamily keeps the numeric series of a labeled family, nil when
// the family is absent.
func floatFamily(fam map[string]any) map[string]float64 {
	if len(fam) == 0 {
		return nil
	}
	out := make(map[string]float64, len(fam))
	for k, raw := range fam {
		if v, ok := raw.(float64); ok {
			out[k] = v
		}
	}
	return out
}

// throughput derives branches/s between consecutive history points.
func throughput(h historyDoc) []float64 {
	var rates []float64
	for i := 1; i < len(h.Points); i++ {
		prev, cur := h.Points[i-1], h.Points[i]
		dt := float64(cur.UnixMillis-prev.UnixMillis) / 1000
		if dt <= 0 {
			continue
		}
		d := cur.Values["bfbp_engine_branches_total"] - prev.Values["bfbp_engine_branches_total"]
		rates = append(rates, d/dt)
	}
	// Keep the tail that fits a terminal comfortably.
	if len(rates) > 60 {
		rates = rates[len(rates)-60:]
	}
	return rates
}

// sparkline renders values as a block-character strip scaled to the max.
func sparkline(vals []float64) string {
	const ramp = "▁▂▃▄▅▆▇█"
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return strings.Repeat("▁", len(vals))
	}
	var b strings.Builder
	for _, v := range vals {
		idx := int(v / max * 7)
		if idx < 0 {
			idx = 0
		}
		if idx > 7 {
			idx = 7
		}
		b.WriteRune([]rune(ramp)[idx])
	}
	return b.String()
}

// sum totals every series of a labeled family.
func sum(fam map[string]any) float64 {
	var total float64
	for _, raw := range fam {
		if v, ok := raw.(float64); ok {
			total += v
		}
	}
	return total
}

// requireQuantiles fails unless every named quantile metric (unlabeled,
// or a family where any series counts) has at least one sample.
func requireQuantiles(v vars, names []string) error {
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		raw, ok := v[name]
		if !ok {
			return fmt.Errorf("quantile metric %s absent from /debug/vars", name)
		}
		if qfield(raw, "count") > 0 {
			continue
		}
		found := false
		if fam, isFam := raw.(map[string]any); isFam {
			for _, series := range fam {
				if qfield(series, "count") > 0 {
					found = true
					break
				}
			}
		}
		if !found {
			return fmt.Errorf("quantile metric %s has no samples", name)
		}
	}
	return nil
}

// human renders a count with K/M/G suffixes.
func human(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// secs renders a duration in seconds with an adaptive unit.
func secs(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v < 1e-6:
		return fmt.Sprintf("%.0fns", v*1e9)
	case v < 1e-3:
		return fmt.Sprintf("%.1fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.1fms", v*1e3)
	default:
		return fmt.Sprintf("%.2fs", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfstat:", err)
	os.Exit(1)
}
