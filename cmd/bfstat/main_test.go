package main

import (
	"context"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"bfbp/internal/sim"
	"bfbp/internal/telemetry"
	"bfbp/internal/workload"
)

// End to end: point the bfstat client at a live telemetry stack after a
// small suite run and check every panel renders real data.
func TestSnapshotAndRenderAgainstLiveStack(t *testing.T) {
	tel, err := telemetry.Start(telemetry.Config{
		MetricsAddr:     "127.0.0.1:0",
		HistoryInterval: time.Hour, // sampled manually below
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tel.Close()

	var eng sim.Engine
	eng.Workers = 2
	tel.Attach(&eng)
	spec, ok := workload.ByName("INT1")
	if !ok {
		t.Fatal("INT1 missing")
	}
	jobs := sim.Matrix(
		[]sim.TraceSource{spec.Source(20_000)},
		[]sim.PredictorSpec{{Name: "static-taken", New: func() sim.Predictor { return &sim.StaticPredictor{Direction: true} }}},
		sim.Options{Probe: tel.EngineMetrics().Probe()},
	)
	if _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	// Two manual history points so the throughput sparkline has a delta.
	tel.History.Sample(time.Now().Add(-time.Second))
	tel.History.Sample(time.Now())

	c := &client{base: "http://" + tel.Addr, hc: &http.Client{Timeout: 5 * time.Second}}
	if err := c.waitUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	f, err := c.snapshot()
	if err != nil {
		t.Fatal(err)
	}

	out := render(f, tel.Addr)
	for _, frag := range []string{
		"health=ok",
		"static-taken",
		"harness predict",
		"runtime  heap",
		"health rules",
		"throughput-collapse",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	// MPKI column: static-taken on INT1 must mispredict something.
	if strings.Contains(out, "static-taken     0.000") {
		t.Errorf("MPKI rendered as zero:\n%s", out)
	}

	if err := requireQuantiles(f.vars, []string{
		"bfbp_engine_run_seconds",
		"bfbp_harness_predict_seconds",
		"bfbp_harness_update_seconds",
	}); err != nil {
		t.Fatalf("quantiles not populated after a run: %v", err)
	}
	if err := requireQuantiles(f.vars, []string{"bfbp_span_seconds"}); err == nil {
		t.Fatal("want error for unpopulated quantile metric (tracing off)")
	}
}

func TestThroughputAndSparkline(t *testing.T) {
	var h historyDoc
	for i, branches := range []float64{0, 1000, 3000, 3000} {
		h.Points = append(h.Points, struct {
			UnixMillis int64              `json:"t_ms"`
			Values     map[string]float64 `json:"values"`
		}{UnixMillis: int64(i) * 1000, Values: map[string]float64{"bfbp_engine_branches_total": branches}})
	}
	rates := throughput(h)
	want := []float64{1000, 2000, 0}
	if len(rates) != len(want) {
		t.Fatalf("rates = %v, want %v", rates, want)
	}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
	if s := sparkline(rates); s != "▄█▁" {
		t.Fatalf("sparkline = %q, want ▄█▁", s)
	}
	if s := sparkline([]float64{0, 0}); s != "▁▁" {
		t.Fatalf("zero sparkline = %q", s)
	}
}

func TestHumanAndSecs(t *testing.T) {
	if human(2.5e9) != "2.5G" || human(12) != "12" {
		t.Fatal("human formatting drifted")
	}
	for v, want := range map[float64]string{
		0:       "-",
		50e-9:   "50ns",
		2.5e-6:  "2.5µs",
		0.00123: "1.2ms",
		3.5:     "3.50s",
	} {
		if got := secs(v); got != want {
			t.Fatalf("secs(%v) = %q, want %q", v, got, want)
		}
	}
}
