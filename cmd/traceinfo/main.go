// Command traceinfo summarises branch traces: record counts, instruction
// counts, branch-site population, bias fractions and direction rates.
// It accepts BFT1 files (from tracegen) or synthetic trace names.
//
// Usage:
//
//	traceinfo traces/SPEC03.bft traces/SERV1.bft
//	traceinfo -t SPEC03 -n 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"bfbp"
	"bfbp/internal/analysis"
	"bfbp/internal/trace"
)

func main() {
	var (
		traceName = flag.String("t", "", "synthetic trace name instead of files")
		branches  = flag.Int("n", 500_000, "dynamic branches for synthetic traces")
	)
	flag.Parse()

	switch {
	case *traceName != "":
		spec, ok := bfbp.TraceByName(*traceName)
		if !ok {
			fatal(fmt.Errorf("unknown trace %q", *traceName))
		}
		report(spec.Name, spec.GenerateN(*branches))
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			tr, err := trace.Collect(trace.NewFileReader(f))
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			report(path, tr)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func report(name string, tr bfbp.Trace) {
	classes, err := analysis.Classify(tr.Stream())
	if err != nil {
		fatal(err)
	}
	pop := analysis.Population(classes)
	insts := tr.Instructions()
	fmt.Printf("%s:\n", name)
	fmt.Printf("  branches          %d\n", len(tr))
	fmt.Printf("  instructions      %d (%.2f per branch)\n", insts, float64(insts)/float64(len(tr)))
	fmt.Printf("  branch sites      %d\n", pop.Sites)
	fmt.Printf("  biased sites      %d (%.1f%%)\n", pop.BiasedSites,
		100*float64(pop.BiasedSites)/float64(pop.Sites))
	fmt.Printf("  biased dynamic    %.1f%%\n", 100*float64(pop.BiasedDynamic)/float64(pop.DynamicBranches))
	fmt.Printf("  taken rate        %.1f%%\n", 100*pop.TakenRate)
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceinfo:", err)
	os.Exit(1)
}
