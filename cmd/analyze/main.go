// Command analyze attributes a predictor's mispredictions to workload
// structure: per-kernel breakdown, per-PC offender report with branch
// classes, and side-by-side predictor comparison.
//
// Usage:
//
//	analyze -t SPEC00 -p bf-isl-tage-10                   # kernel breakdown
//	analyze -t SPEC00 -p isl-tage-10,bf-isl-tage-10       # comparison
//	analyze -t SERV3 -p bf-neural -offenders 15           # worst PCs
//	analyze -t SPEC06 -population                         # branch classes only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bfbp"
	"bfbp/internal/analysis"
	"bfbp/internal/sim"
	"bfbp/internal/workload"
)

func main() {
	var (
		traceName  = flag.String("t", "", "synthetic trace name")
		preds      = flag.String("p", "", "comma-separated predictor names (bfsim names)")
		branches   = flag.Int("n", 400_000, "dynamic branches")
		offenders  = flag.Int("offenders", 0, "print the top-N mispredicted PCs with classes")
		population = flag.Bool("population", false, "print the branch population summary and exit")
	)
	flag.Parse()

	if *traceName == "" {
		fatal(fmt.Errorf("need -t <trace>"))
	}
	spec, ok := workload.ByName(*traceName)
	if !ok {
		fatal(fmt.Errorf("unknown trace %q", *traceName))
	}

	if *population {
		classes, err := analysis.Classify(spec.GenerateN(*branches).Stream())
		if err != nil {
			fatal(err)
		}
		rep := analysis.Population(classes)
		fmt.Printf("trace            %s\n", spec.Name)
		fmt.Printf("sites            %d\n", rep.Sites)
		fmt.Printf("dynamic branches %d\n", rep.DynamicBranches)
		fmt.Printf("biased sites     %d (%.1f%%)\n", rep.BiasedSites,
			100*float64(rep.BiasedSites)/float64(rep.Sites))
		fmt.Printf("biased dynamic   %d (%.1f%%)\n", rep.BiasedDynamic,
			100*float64(rep.BiasedDynamic)/float64(rep.DynamicBranches))
		fmt.Printf("taken rate       %.1f%%\n", 100*rep.TakenRate)
		return
	}

	if *preds == "" {
		fatal(fmt.Errorf("need -p <predictors> (or -population)"))
	}
	names := strings.Split(*preds, ",")
	var ps []sim.Predictor
	for _, name := range names {
		p, err := byName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		ps = append(ps, p)
	}

	if len(ps) == 1 && *offenders > 0 {
		tr := spec.GenerateN(*branches)
		classes, err := analysis.Classify(tr.Stream())
		if err != nil {
			fatal(err)
		}
		st, err := bfbp.Run(ps[0], tr.Stream(), bfbp.Options{
			Warmup: uint64(*branches / 10), PerPC: true,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s on %s: MPKI %.3f\n\n", ps[0].Name(), spec.Name, st.MPKI())
		fmt.Print(analysis.TopOffendersReport(st, classes, *offenders))
		return
	}

	cmp, err := analysis.Compare(spec, *branches, ps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("misprediction attribution on %s (%d branches):\n\n", spec.Name, *branches)
	fmt.Print(cmp.Render())
}

// byName resolves bfsim-style predictor names via the public API.
func byName(name string) (sim.Predictor, error) {
	switch name {
	case "bimodal":
		return bfbp.NewBimodal(1 << 14), nil
	case "gshare":
		return bfbp.NewGShare(1<<16, 16), nil
	case "local":
		return bfbp.NewLocal(1<<12, 10, 1<<15), nil
	case "tournament":
		return bfbp.NewTournament(bfbp.Tournament64KB()), nil
	case "yags":
		return bfbp.NewYAGS(bfbp.YAGS64KB()), nil
	case "filter":
		return bfbp.NewFilter(bfbp.Filter64KB()), nil
	case "o-gehl":
		return bfbp.NewGEHL(bfbp.GEHL64KB()), nil
	case "strided":
		return bfbp.NewStrided(bfbp.Strided64KB()), nil
	case "perceptron":
		return bfbp.NewPerceptron(bfbp.Perceptron64KB()), nil
	case "oh-snap":
		return bfbp.NewOHSNAP(bfbp.OHSNAP64KB()), nil
	case "bf-neural":
		return bfbp.NewBFNeural(bfbp.BFNeural64KB()), nil
	}
	var n int
	switch {
	case scan(name, "isl-tage-%d", &n):
		return bfbp.NewTAGE(bfbp.ISLTAGE(n)), nil
	case scan(name, "tage-%d", &n):
		return bfbp.NewTAGE(bfbp.TAGEBare(n)), nil
	case scan(name, "bf-isl-tage-%d", &n):
		return bfbp.NewBFTAGE(bfbp.BFISLTAGE(n)), nil
	case scan(name, "bf-tage-%d", &n):
		return bfbp.NewBFTAGE(bfbp.BFTAGEBare(n)), nil
	}
	return nil, fmt.Errorf("analyze: unknown predictor %q", name)
}

func scan(s, format string, n *int) bool {
	c, err := fmt.Sscanf(s, format, n)
	return err == nil && c == 1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
