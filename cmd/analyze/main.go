// Command analyze attributes a predictor's mispredictions to workload
// structure: per-kernel breakdown, per-PC offender report with branch
// classes, and side-by-side predictor comparison.
//
// Usage:
//
//	analyze -t SPEC00 -p bf-isl-tage-10                   # kernel breakdown
//	analyze -t SPEC00 -p isl-tage-10,bf-isl-tage-10       # comparison
//	analyze -t SERV3 -p bf-neural -offenders 15           # worst PCs
//	analyze -t SPEC06 -population                         # branch classes only
//	analyze -t SERV1 -p tage-8,bf-tage-8 -explain         # provenance + paper-shape
//	analyze -t SERV1 -p tage-8,bf-tage-8 -utilization     # occupancy by history length
//	analyze -t SPEC03 -p bf-neural -warmstart             # cold vs warm MPKI curve
//	analyze -t SERV3 -p bf-tage-10 -phases                # MPKI phase segments + movers
//	analyze -t SPEC03 -p gshare -interference SERV1       # context-switch penalty
//
// Long attributions can be observed live like the other commands:
//
//	analyze ... -metrics-addr :8080   # /metrics, /metrics/history, /healthz (watch with bfstat)
//	analyze ... -heartbeat 10s        # periodic stderr progress line
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bfbp"
	"bfbp/internal/analysis"
	"bfbp/internal/experiments"
	"bfbp/internal/obs"
	"bfbp/internal/sim"
	"bfbp/internal/telemetry"
	"bfbp/internal/workload"
)

func main() {
	var (
		traceName   = flag.String("t", "", "synthetic trace name")
		preds       = flag.String("p", "", "comma-separated predictor names (bfsim names)")
		branches    = flag.Int("n", 400_000, "dynamic branches")
		offenders   = flag.Int("offenders", 0, "print the top-N mispredicted PCs with classes")
		population  = flag.Bool("population", false, "print the branch population summary and exit")
		explain     = flag.Bool("explain", false, "decision provenance: cause taxonomy, component/bank attribution, paper-shape check")
		explainNN   = flag.Uint64("explain-sample", 0, "confidence-margin sample period for -explain (power of two; 0 = 64)")
		utilization = flag.Bool("utilization", false, "capacity-vs-reach report: per-bank occupancy/conflicts by history length, with a bias-free vs conventional shape check on pairs")
		phases      = flag.Bool("phases", false, "segment the run at MPKI change points and rank phase-sensitive branch sites")
		phaseWindow = flag.Uint64("phase-window", 0, "MPKI window in branches for -phases (0 = branches/50)")

		warmstart = flag.Bool("warmstart", false, "cold vs warm MPKI windows via a bfbp.state.v1 snapshot")
		windows   = flag.Int("windows", 10, "window count for -warmstart")
		interfere = flag.String("interference", "", "second trace: context-switch interference between -t and this trace")
		quantum   = flag.Int("quantum", 2000, "context-switch quantum in branches for -interference")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics/history, /healthz, /debug/pprof on this address")
		journalPath = flag.String("journal", "", "write bfbp.journal.v1 JSONL events to this file")
		heartbeat   = flag.Duration("heartbeat", time.Duration(0), "print a progress line to stderr at this period (0 = off)")
	)
	flag.Parse()

	tel, err := telemetry.Start(telemetry.Config{
		MetricsAddr: *metricsAddr,
		JournalPath: *journalPath,
		Heartbeat:   *heartbeat,
	})
	if err != nil {
		fatal(err)
	}
	defer tel.Close()

	if *traceName == "" {
		fatal(fmt.Errorf("need -t <trace>"))
	}
	spec, ok := workload.ByName(*traceName)
	if !ok {
		fatal(fmt.Errorf("unknown trace %q", *traceName))
	}

	if *population {
		classes, err := analysis.Classify(spec.GenerateN(*branches).Stream())
		if err != nil {
			fatal(err)
		}
		rep := analysis.Population(classes)
		fmt.Printf("trace            %s\n", spec.Name)
		fmt.Printf("sites            %d\n", rep.Sites)
		fmt.Printf("dynamic branches %d\n", rep.DynamicBranches)
		fmt.Printf("biased sites     %d (%.1f%%)\n", rep.BiasedSites,
			100*float64(rep.BiasedSites)/float64(rep.Sites))
		fmt.Printf("biased dynamic   %d (%.1f%%)\n", rep.BiasedDynamic,
			100*float64(rep.BiasedDynamic)/float64(rep.DynamicBranches))
		fmt.Printf("taken rate       %.1f%%\n", 100*rep.TakenRate)
		return
	}

	if *preds == "" {
		fatal(fmt.Errorf("need -p <predictors> (or -population)"))
	}
	infos, err := bfbp.SelectPredictors(*preds)
	if err != nil {
		fatal(err)
	}
	ps := make([]sim.Predictor, len(infos))
	for i, info := range infos {
		ps[i] = info.New()
	}

	if *phases {
		win := *phaseWindow
		if win == 0 {
			win = uint64(*branches / 50)
			if win == 0 {
				win = 1
			}
		}
		for _, p := range ps {
			rep, err := analysis.AnalyzePhases(p, spec.Stream(*branches), spec.Name, p.Name(), win, obs.DriftConfig{}, *offenders)
			if err != nil {
				fatal(err)
			}
			if err := rep.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}

	if *warmstart || *interfere != "" {
		cfg := experiments.DefaultConfig()
		cfg.LongBranches, cfg.ShortBranches = *branches, *branches
		for _, info := range infos {
			var t experiments.Table
			var err error
			if *warmstart {
				t, err = experiments.WarmStart(cfg, info.Spec(), spec.Name, *windows)
			} else {
				t, err = experiments.Interference(cfg, info.Spec(), spec.Name, *interfere, *quantum)
			}
			if err != nil {
				fatal(err)
			}
			fmt.Print(t.Render())
			fmt.Println()
		}
		return
	}

	if *explain {
		explainRun(spec, *branches, *explainNN, ps)
		return
	}

	if *utilization {
		utilizationRun(spec, *branches, ps)
		return
	}

	if len(ps) == 1 && *offenders > 0 {
		tr := spec.GenerateN(*branches)
		classes, err := analysis.Classify(tr.Stream())
		if err != nil {
			fatal(err)
		}
		st, err := bfbp.Run(ps[0], tr.Stream(), bfbp.Options{
			Warmup: uint64(*branches / 10), PerPC: true,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s on %s: MPKI %.3f\n\n", ps[0].Name(), spec.Name, st.MPKI())
		fmt.Print(analysis.TopOffendersReport(st, classes, *offenders))
		return
	}

	cmp, err := analysis.Compare(spec, *branches, ps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("misprediction attribution on %s (%d branches):\n\n", spec.Name, *branches)
	fmt.Print(cmp.Render())
}

// explainRun evaluates each predictor with decision-provenance tracing
// and prints the attribution reports; when the list pairs a bias-free
// predictor with a conventional one (both with bank attribution), the
// paper-shape validation runs on the pair.
func explainRun(spec workload.Spec, branches int, sample uint64, ps []sim.Predictor) {
	tr := spec.GenerateN(branches)
	classes, err := analysis.Classify(tr.Stream())
	if err != nil {
		fatal(err)
	}
	var shapes []analysis.ShapeInput
	for _, p := range ps {
		st, err := bfbp.Run(p, tr.Stream(), bfbp.Options{
			Warmup:       uint64(branches / 10),
			PerPC:        true,
			Explain:      true,
			ExplainEvery: sample,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s on %s: MPKI %.3f\n", p.Name(), spec.Name, st.MPKI())
		if pv := st.Provenance; pv != nil {
			fmt.Print(analysis.CauseBreakdownReport(p.Name(), pv))
			fmt.Print(analysis.ComponentReport(pv))
			if banks := analysis.BankUtilizationReport(pv); banks != "" {
				fmt.Print(banks)
			}
		} else {
			fmt.Printf("  (no provenance: %s does not implement Explain)\n", p.Name())
		}
		fmt.Println()
		in := analysis.ShapeInput{Name: p.Name(), Stats: st}
		if br := sim.Capabilities(p).BankReach; br != nil {
			in.Reach = br.BankReach()
		}
		shapes = append(shapes, in)
	}
	if bf, base, ok := shapePair(shapes); ok {
		fmt.Print(analysis.PaperShape(bf, base, classes).Render())
	}
}

// utilizationRun prints each predictor's run-end table/state sample as
// a capacity-vs-reach report; when the list pairs a bias-free predictor
// with a conventional one, the capacity shape check runs on the pair.
func utilizationRun(spec workload.Spec, branches int, ps []sim.Predictor) {
	var reports []analysis.UtilizationReport
	for _, p := range ps {
		rep, err := analysis.Utilization(p, spec, branches)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep.Render())
		fmt.Println()
		reports = append(reports, rep)
	}
	var bf, base *analysis.UtilizationReport
	for i := range reports {
		if strings.HasPrefix(reports[i].Predictor, "bf-") {
			if bf == nil {
				bf = &reports[i]
			}
		} else if base == nil {
			base = &reports[i]
		}
	}
	if bf != nil && base != nil {
		fmt.Print(analysis.Capacity(*bf, *base).Render())
	}
}

// shapePair picks the first bias-free and first conventional predictor
// that both collected provenance; bank reach rides along when present.
func shapePair(shapes []analysis.ShapeInput) (bf, base analysis.ShapeInput, ok bool) {
	var haveBF, haveBase bool
	for _, s := range shapes {
		if s.Stats.Provenance == nil {
			continue
		}
		if strings.HasPrefix(s.Name, "bf-") {
			if !haveBF {
				bf, haveBF = s, true
			}
		} else if !haveBase {
			base, haveBase = s, true
		}
	}
	return bf, base, haveBF && haveBase
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
