// Command bench measures simulation throughput over a fixed
// predictor × trace matrix and records the result as a machine-readable
// JSON document (schema bfbp.bench.v1), so the repository carries its
// own performance trajectory: BENCH_0.json is the pre-overhaul
// baseline, and every later BENCH_<n>.json is one measured point after
// a hot-path change.
//
// Unlike `go test -bench`, cells run the real suite path — a streaming
// generator-backed trace source driven through sim.Run — so the numbers
// include trace synthesis, batching, and harness overhead, which is
// what bounds real sweep iteration time.
//
// Usage:
//
//	bench                          # full matrix, write next BENCH_<n>.json
//	bench -quick                   # CI-scale smoke run
//	bench -out BENCH_local.json    # explicit output path
//	bench -baseline BENCH_0.json -tolerance 2   # regression gate
//	bench -preds bf-neural -traces SPEC03 -n 1000000
//	bench -pred bf-tage-10 -trace SPEC03        # single-cell A/B run
//	bench -cpuprofile cpu.pprof    # profile the measured runs
//	bench -profile profdir         # per-cell cpu+mem profiles into profdir/
//	bench -trace-out bench.trace.json           # Perfetto span timeline
//	bench -runtime-trace bench.rtrace           # Go runtime/trace capture
//	bench -metrics-addr :8080                   # live /metrics, /metrics/history, /healthz (watch with bfstat)
//	bench -journal bench.jsonl -heartbeat 10s   # event log + stderr progress
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"bfbp"
	"bfbp/internal/obs"
	"bfbp/internal/prof"
	"bfbp/internal/sim"
	"bfbp/internal/telemetry"
)

// Fixed matrix: the two headline predictors whose throughput the
// overhaul targets, plus a cheap baseline and a conventional TAGE so
// harness regressions are visible even when predictor math dominates.
const (
	defaultPreds  = "bimodal,gshare,isl-tage-15,bf-neural,bf-tage-10"
	defaultTraces = "SPEC03,SPEC07,INT2,MM2,SERV1"
)

// Cell is one measured (predictor, trace) point.
type Cell struct {
	Predictor      string  `json:"predictor"`
	Trace          string  `json:"trace"`
	Branches       uint64  `json:"branches"`
	BestNS         int64   `json:"best_ns"`
	BranchesPerSec float64 `json:"branches_per_sec"`
	NSPerBranch    float64 `json:"ns_per_branch"`
	MPKI           float64 `json:"mpki"`
}

// Row aggregates a predictor's cells across the trace matrix.
type Row struct {
	Predictor      string  `json:"predictor"`
	Branches       uint64  `json:"branches"`
	ElapsedNS      int64   `json:"elapsed_ns"`
	BranchesPerSec float64 `json:"branches_per_sec"`
	NSPerBranch    float64 `json:"ns_per_branch"`
}

// Report is the bfbp.bench.v1 document.
type Report struct {
	Schema     string `json:"schema"`
	Created    string `json:"created"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Quick      bool   `json:"quick"`
	Branches   int    `json:"branches_per_trace"`
	Runs       int    `json:"runs"`
	Cells      []Cell `json:"cells"`
	Rows       []Row  `json:"rows"`
}

func main() {
	var (
		quick     = flag.Bool("quick", false, "CI-scale run: fewer branches, one measured run per cell")
		branches  = flag.Int("n", 300_000, "dynamic branches per trace (quick: /5)")
		runs      = flag.Int("runs", 3, "measured runs per cell; the fastest is recorded (quick: 1)")
		preds     = flag.String("preds", defaultPreds, "comma-separated registry predictor names")
		traces    = flag.String("traces", defaultTraces, "comma-separated trace names")
		pred      = flag.String("pred", "", "single-cell filter: run only this predictor (overrides -preds)")
		traceOne  = flag.String("trace", "", "single-cell filter: run only this trace (overrides -traces)")
		profDir   = flag.String("profile", "", "write per-cell cpu+mem profiles (<pred>_<trace>.{cpu,mem}.pprof) into this directory")
		out       = flag.String("out", "", "output path (default: next free BENCH_<n>.json)")
		baseline  = flag.String("baseline", "", "compare against this bfbp.bench.v1 file")
		tolerance = flag.Float64("tolerance", 2.0, "fail when a row is this factor slower than the baseline")
		traceOut  = flag.String("trace-out", "", "write a bfbp.trace.v1 span timeline (Perfetto/chrome://tracing JSON) to this file")
		rtraceOut = flag.String("runtime-trace", "", "capture a Go runtime/trace (with bridged spans) to this file")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics/history, /healthz, /debug/pprof on this address")
		journalPath = flag.String("journal", "", "write bfbp.journal.v1 JSONL events to this file")
		heartbeat   = flag.Duration("heartbeat", 0, "print a progress line to stderr at this period (0 = off)")
	)
	prof.Flags(flag.CommandLine)
	flag.Parse()

	if *quick {
		*branches /= 5
		*runs = 1
	}
	if *runs < 1 {
		*runs = 1
	}
	// Single-cell A/B filters: -pred/-trace narrow the matrix without
	// restating the full lists.
	if *pred != "" {
		*preds = *pred
	}
	if *traceOne != "" {
		*traces = *traceOne
	}

	specs, err := bfbp.SelectPredictors(*preds)
	if err != nil {
		fatal(err)
	}
	var sources []bfbp.TraceSource
	for _, name := range strings.Split(*traces, ",") {
		spec, ok := bfbp.TraceByName(strings.TrimSpace(name))
		if !ok {
			fatal(fmt.Errorf("unknown trace %q", name))
		}
		sources = append(sources, spec.Source(*branches))
	}

	stop, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stop()
	cellProf, err := prof.NewCellProfiler(*profDir)
	if err != nil {
		fatal(err)
	}

	tel, err := telemetry.Start(telemetry.Config{
		MetricsAddr:      *metricsAddr,
		JournalPath:      *journalPath,
		Heartbeat:        *heartbeat,
		TracePath:        *traceOut,
		RuntimeTracePath: *rtraceOut,
	})
	if err != nil {
		fatal(err)
	}
	defer tel.Close()
	tracer := tel.RunTracer()

	rep := Report{
		Schema:     "bfbp.bench.v1",
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
		Branches:   *branches,
		Runs:       *runs,
	}
	opt := sim.Options{Warmup: uint64(*branches / 10)}
	if *metricsAddr != "" || *heartbeat > 0 {
		// Live-observed benches sample harness latency so the quantile
		// surfaces have data; pure measurement runs skip the probe.
		opt.Probe = tel.EngineMetrics().Probe()
	}
	rowAgg := map[string]*Row{}
	for _, src := range sources {
		for _, info := range specs {
			cell, err := measure(tracer, cellProf, info, src, opt, *runs)
			if err != nil {
				fatal(err)
			}
			rep.Cells = append(rep.Cells, cell)
			r := rowAgg[info.Name]
			if r == nil {
				r = &Row{Predictor: info.Name}
				rowAgg[info.Name] = r
			}
			r.Branches += cell.Branches
			r.ElapsedNS += cell.BestNS
			fmt.Fprintf(os.Stderr, "%-12s %-12s %10.0f branches/s  %7.1f ns/branch  (MPKI %.3f)\n",
				src.Name(), info.Name, cell.BranchesPerSec, cell.NSPerBranch, cell.MPKI)
		}
	}
	for _, info := range specs {
		r := rowAgg[info.Name]
		if r.ElapsedNS > 0 {
			r.BranchesPerSec = float64(r.Branches) / (float64(r.ElapsedNS) / 1e9)
			r.NSPerBranch = float64(r.ElapsedNS) / float64(r.Branches)
		}
		rep.Rows = append(rep.Rows, *r)
	}

	path := *out
	if path == "" {
		path = nextBenchPath()
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)

	if *baseline != "" {
		if err := compare(*baseline, rep, *tolerance); err != nil {
			fatal(err)
		}
	}
}

// measure times `runs` full simulations of one matrix cell — a fresh
// predictor over a fresh streaming reader each time — and keeps the
// fastest, the standard best-of-N discipline for wall-clock benchmarks.
// When tracer is non-nil every measured run gets a root span on lane 0
// so bench timelines show the per-run batch/drain structure. When
// cellProf is non-nil the cell's runs are captured as one cpu+mem
// profile pair named <predictor>_<trace>.
func measure(tracer *obs.Tracer, cellProf *prof.CellProfiler, info bfbp.PredictorInfo, src bfbp.TraceSource, opt sim.Options, runs int) (Cell, error) {
	cell := Cell{Predictor: info.Name, Trace: src.Name()}
	stopProf, err := cellProf.Start(info.Name + "_" + src.Name())
	if err != nil {
		return cell, err
	}
	defer stopProf()
	for i := 0; i < runs; i++ {
		p := info.New()
		if tracer != nil {
			opt.TraceSpan = tracer.StartSpan("bench", info.Name+"/"+src.Name(), 0).
				Attr("predictor", info.Name).Attr("trace", src.Name()).Attr("run", i)
		}
		start := time.Now()
		st, err := sim.Run(p, src.Open(), opt)
		elapsed := time.Since(start)
		opt.TraceSpan.End()
		if err != nil {
			return cell, fmt.Errorf("bench: %s on %s: %w", info.Name, src.Name(), err)
		}
		if cell.BestNS == 0 || elapsed.Nanoseconds() < cell.BestNS {
			cell.BestNS = elapsed.Nanoseconds()
			cell.Branches = st.Branches
			cell.MPKI = st.MPKI()
		}
	}
	if cell.BestNS > 0 {
		cell.BranchesPerSec = float64(cell.Branches) / (float64(cell.BestNS) / 1e9)
		cell.NSPerBranch = float64(cell.BestNS) / float64(cell.Branches)
	}
	return cell, nil
}

// nextBenchPath returns BENCH_<n>.json for the smallest n not yet taken,
// so successive runs extend the trajectory without clobbering history.
func nextBenchPath() string {
	taken := map[int]bool{}
	matches, _ := filepath.Glob("BENCH_*.json")
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_%d.json", &n); err == nil {
			taken[n] = true
		}
	}
	n := 0
	for taken[n] {
		n++
	}
	return fmt.Sprintf("BENCH_%d.json", n)
}

// controlPredictors are cheap table predictors no optimisation wave
// touches; their throughput tracks raw machine speed, so the ratio of
// their baseline-vs-current rows calibrates out runner-to-runner (and
// noisy-neighbour) speed differences before the tolerance is applied.
var controlPredictors = []string{"bimodal", "gshare"}

// compare gates on per-predictor aggregate throughput: the run fails
// when any row shared with the baseline is more than `tolerance` times
// slower after dividing out the machine-speed calibration factor (the
// geometric mean of the control predictors' ratios). Normalising first
// lets the tolerance be tight enough to catch real hot-path
// regressions without flaking on slow CI runners. A control predictor
// that genuinely regresses still trips the gate: its own normalised
// ratio deviates from the geomean the other control anchors.
func compare(path string, cur Report, tolerance float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("bench: parsing baseline %s: %w", path, err)
	}
	if base.Schema != "bfbp.bench.v1" {
		return fmt.Errorf("bench: baseline %s has schema %q, want bfbp.bench.v1", path, base.Schema)
	}
	baseRows := map[string]Row{}
	for _, r := range base.Rows {
		baseRows[r.Predictor] = r
	}
	names := make([]string, 0, len(cur.Rows))
	for _, r := range cur.Rows {
		names = append(names, r.Predictor)
	}
	sort.Strings(names)
	curRows := map[string]Row{}
	for _, r := range cur.Rows {
		curRows[r.Predictor] = r
	}
	calib, nCtl := 1.0, 0
	for _, name := range controlPredictors {
		b, ok := baseRows[name]
		c, ok2 := curRows[name]
		if ok && ok2 && b.BranchesPerSec > 0 && c.BranchesPerSec > 0 {
			calib *= c.BranchesPerSec / b.BranchesPerSec
			nCtl++
		}
	}
	if nCtl > 0 {
		calib = math.Pow(calib, 1/float64(nCtl))
	} else {
		calib = 1
	}
	var failures []string
	fmt.Fprintf(os.Stderr, "baseline %s (%s, %s), machine calibration %.2fx:\n",
		path, base.Created, base.GoVersion, calib)
	for _, name := range names {
		b, ok := baseRows[name]
		if !ok || b.BranchesPerSec <= 0 {
			continue
		}
		c := curRows[name]
		ratio := c.BranchesPerSec / b.BranchesPerSec
		norm := ratio / calib
		fmt.Fprintf(os.Stderr, "  %-14s %10.0f -> %10.0f branches/s  (%.2fx raw, %.2fx normalised)\n",
			name, b.BranchesPerSec, c.BranchesPerSec, ratio, norm)
		if norm*tolerance < 1 {
			failures = append(failures, fmt.Sprintf("%s: %.2fx of baseline after %.2fx calibration (tolerance %.2gx)",
				name, norm, calib, tolerance))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: throughput regression vs %s:\n  %s", path, strings.Join(failures, "\n  "))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
