// Command journal queries and compares bfbp.journal.v1 files written
// by bfsim/experiments (-journal run.jsonl).
//
// Usage:
//
//	journal summary run.jsonl                  # event counts + run table
//	journal filter -kind run_finish run.jsonl  # print matching raw lines
//	journal filter -trace SERV1 -predictor bf-tage-10 run.jsonl
//	journal filter -span 7 run.jsonl           # events joined to trace span 7
//	journal diff a.jsonl b.jsonl               # flag MPKI/window drift
//	journal diff -tolerance 0.01 a.jsonl b.jsonl
//
// diff exits 1 when the runs drifted, so it slots into CI gates; the
// -span filter takes the span IDs found in a bfbp.trace.v1 timeline
// (bfsim -trace-out), joining journal records to their trace slices.
package main

import (
	"flag"
	"fmt"
	"os"

	"bfbp/internal/journalq"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "summary":
		cmdSummary(args[1:])
	case "filter":
		cmdFilter(args[1:])
	case "diff":
		cmdDiff(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "journal: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  journal summary FILE
  journal filter [-kind K] [-trace T] [-predictor P] [-span N] FILE
  journal diff [-tolerance F] FILE_A FILE_B
`)
}

func load(path string) []journalq.Event {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := journalq.Read(f)
	if err != nil {
		fatal(err)
	}
	return events
}

func cmdSummary(args []string) {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("summary: need exactly one journal file"))
	}
	fmt.Print(journalq.Summarize(load(fs.Arg(0))).Render())
}

func cmdFilter(args []string) {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	var f journalq.Filter
	fs.StringVar(&f.Kind, "kind", "", "event kind (e.g. run_finish, window)")
	fs.StringVar(&f.Trace, "trace", "", "trace name")
	fs.StringVar(&f.Predictor, "predictor", "", "predictor name")
	fs.Uint64Var(&f.Span, "span", 0, "bfbp.trace.v1 span ID")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("filter: need exactly one journal file"))
	}
	for _, ev := range f.Apply(load(fs.Arg(0))) {
		fmt.Println(ev.Raw)
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tolerance", 1e-9, "absolute MPKI tolerance before a cell counts as drifted")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff: need exactly two journal files"))
	}
	rep := journalq.Diff(load(fs.Arg(0)), load(fs.Arg(1)), *tol)
	fmt.Print(rep.Render())
	if !rep.Clean() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "journal:", err)
	os.Exit(1)
}
