// Command journal queries and compares bfbp.journal.v1 files written
// by bfsim/experiments (-journal run.jsonl).
//
// Usage:
//
//	journal summary run.jsonl                  # event counts + run table + drift alarms
//	journal summary -json run.jsonl            # the same as a JSON document
//	journal filter -kind run_finish run.jsonl  # print matching raw lines
//	journal filter -kind drift run.jsonl       # change-point alarms only
//	journal filter -trace SERV1 -predictor bf-tage-10 run.jsonl
//	journal filter -span 7 run.jsonl           # events joined to trace span 7
//	journal diff a.jsonl b.jsonl               # flag MPKI/window drift
//	journal diff -tolerance 0.01 a.jsonl b.jsonl
//	journal flight flight.json                 # inspect a bfbp.flight.v1 dump
//
// diff exits 1 when the runs drifted, so it slots into CI gates; the
// -span filter takes the span IDs found in a bfbp.trace.v1 timeline
// (bfsim -trace-out), joining journal records to their trace slices.
// flight validates a flight-recorder dump (bfsim -flight-dump), prints
// the triggering alarm and detector states, and summarises the journal
// records embedded in it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bfbp/internal/journalq"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "summary":
		cmdSummary(args[1:])
	case "filter":
		cmdFilter(args[1:])
	case "diff":
		cmdDiff(args[1:])
	case "flight":
		cmdFlight(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "journal: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  journal summary [-json] FILE
  journal filter [-kind K] [-trace T] [-predictor P] [-span N] FILE
  journal diff [-tolerance F] FILE_A FILE_B
  journal flight FILE
`)
}

func load(path string) []journalq.Event {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := journalq.Read(f)
	if err != nil {
		fatal(err)
	}
	return events
}

func cmdSummary(args []string) {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the summary as a JSON document")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("summary: need exactly one journal file"))
	}
	s := journalq.Summarize(load(fs.Arg(0)))
	if *jsonOut {
		b, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Print(s.Render())
}

func cmdFilter(args []string) {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	var f journalq.Filter
	fs.StringVar(&f.Kind, "kind", "", "event kind (e.g. run_finish, window)")
	fs.StringVar(&f.Trace, "trace", "", "trace name")
	fs.StringVar(&f.Predictor, "predictor", "", "predictor name")
	fs.Uint64Var(&f.Span, "span", 0, "bfbp.trace.v1 span ID")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("filter: need exactly one journal file"))
	}
	for _, ev := range f.Apply(load(fs.Arg(0))) {
		fmt.Println(ev.Raw)
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tolerance", 1e-9, "absolute MPKI tolerance before a cell counts as drifted")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff: need exactly two journal files"))
	}
	rep := journalq.Diff(load(fs.Arg(0)), load(fs.Arg(1)), *tol)
	fmt.Print(rep.Render())
	if !rep.Clean() {
		os.Exit(1)
	}
}

func cmdFlight(args []string) {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("flight: need exactly one flight-dump file"))
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	dump, events, err := journalq.ReadFlight(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s dump, reason %s\n", dump.Schema, dump.Reason)
	if dump.Alarm != nil {
		fmt.Printf("alarm: %s %s at sample %d, %.3f -> %.3f (score %.3f)\n",
			dump.AlarmKey, dump.Alarm.Direction, dump.Alarm.Sample,
			dump.Alarm.Baseline, dump.Alarm.Value, dump.Alarm.Score)
	}
	if len(dump.Detectors) > 0 {
		fmt.Println("detectors:")
		for _, d := range dump.Detectors {
			fmt.Printf("  %-40s samples %6d  baseline %10.3f  alarms %d\n",
				d.Key, d.State.Samples, d.State.Baseline, d.State.Alarms)
		}
	}
	fmt.Printf("%d records retained (%d evicted)\n", len(dump.Records), dump.Evicted)
	fmt.Print(journalq.Summarize(events).Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "journal:", err)
	os.Exit(1)
}
