// Command bfsim runs branch predictors over traces and reports MPKI,
// mimicking the CBP evaluation flow.
//
// Usage:
//
//	bfsim -p bf-neural -t SPEC03                 # synthetic trace by name
//	bfsim -p bf-tage-10,isl-tage-15 -t SPEC03    # compare predictors
//	bfsim -p tage-10 -f trace.bft                # trace from a file
//	bfsim -p bf-neural -t SPEC03 -n 1000000      # trace length
//	bfsim -p bf-tage-10 -t SERV3 -offenders 10   # top mispredicted PCs
//	bfsim -p bf-tage-10 -t SPEC00 -tablehits     # provider histogram
//	bfsim -p bf-neural -storage                  # storage budget only
//	bfsim -list                                  # available predictors
//
// Predictor names: bimodal, gshare, local, tournament, yags, filter,
// o-gehl, bf-gehl, strided, perceptron, perceptron-fhist, oh-snap,
// tage-N, isl-tage-N (N in 4..15), bf-neural, bf-neural-32k,
// bf-neural-fweights, bf-neural-ghist, bf-tage-N, bf-isl-tage-N
// (N in 4..10). Use -list for the full set.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bfbp"
	"bfbp/internal/trace"
)

func main() {
	var (
		preds     = flag.String("p", "bf-neural", "comma-separated predictor names")
		traceName = flag.String("t", "", "synthetic trace name (e.g. SPEC03)")
		traceFile = flag.String("f", "", "trace file in BFT1 format")
		branches  = flag.Int("n", 500_000, "dynamic branches for synthetic traces")
		warmup    = flag.Int("warmup", -1, "warmup branches excluded from stats (-1 = 10%)")
		delay     = flag.Int("delay", 0, "update delay in branches (pipeline model)")
		offenders = flag.Int("offenders", 0, "print the top-N mispredicted PCs")
		tableHits = flag.Bool("tablehits", false, "print the provider-table histogram")
		storage   = flag.Bool("storage", false, "print the storage budget and exit")
		list      = flag.Bool("list", false, "list available predictor names")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(predictorNames(), "\n"))
		return
	}

	var mks []func() bfbp.Predictor
	for _, name := range strings.Split(*preds, ",") {
		mk, err := predictorByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		mks = append(mks, mk)
	}

	if *storage {
		for _, mk := range mks {
			p := mk()
			if sa, ok := p.(bfbp.StorageAccounter); ok {
				fmt.Print(sa.Storage().String())
			} else {
				fmt.Printf("%s: no storage accounting\n", p.Name())
			}
		}
		return
	}

	var tr bfbp.Trace
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		var cerr error
		tr, cerr = trace.Collect(trace.NewFileReader(f))
		if cerr != nil {
			fatal(cerr)
		}
	case *traceName != "":
		spec, ok := bfbp.TraceByName(*traceName)
		if !ok {
			fatal(fmt.Errorf("unknown trace %q (known: %s...)", *traceName, strings.Join(bfbp.TraceNames()[:5], ", ")))
		}
		tr = spec.GenerateN(*branches)
	default:
		fatal(fmt.Errorf("need -t <trace> or -f <file>"))
	}

	warm := uint64(*warmup)
	if *warmup < 0 {
		warm = uint64(len(tr) / 10)
	}
	fmt.Printf("%-18s %10s %12s %10s\n", "predictor", "MPKI", "mispredicts", "accuracy")
	for _, mk := range mks {
		p := mk()
		st, err := bfbp.Run(p, tr.Stream(), bfbp.Options{
			Warmup:      warm,
			UpdateDelay: *delay,
			PerPC:       *offenders > 0,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-18s %10.3f %12d %9.2f%%\n", p.Name(), st.MPKI(), st.Mispredicts, 100*st.Accuracy())
		if *offenders > 0 {
			for _, o := range st.TopOffenders(*offenders) {
				fmt.Printf("    pc %#x: %d/%d mispredicted (%.1f%%)\n",
					o.PC, o.Mispredicts, o.Count, 100*float64(o.Mispredicts)/float64(o.Count))
			}
		}
		if *tableHits {
			if th, ok := p.(bfbp.TableHitReporter); ok {
				hits := th.TableHits()
				var total uint64
				for _, h := range hits {
					total += h
				}
				fmt.Printf("    provider histogram (T0 = base):\n")
				for i, h := range hits {
					if total > 0 {
						fmt.Printf("      T%-2d %8d (%.1f%%)\n", i, h, 100*float64(h)/float64(total))
					}
				}
			}
		}
	}
}

func predictorNames() []string {
	names := []string{
		"bimodal", "gshare", "local", "tournament", "yags", "filter",
		"o-gehl", "bf-gehl", "strided",
		"perceptron", "perceptron-fhist", "oh-snap",
		"bf-neural", "bf-neural-32k",
		"bf-neural-fweights", "bf-neural-ghist",
	}
	for n := 4; n <= 15; n++ {
		names = append(names, fmt.Sprintf("tage-%d", n), fmt.Sprintf("isl-tage-%d", n))
	}
	for n := 4; n <= 10; n++ {
		names = append(names, fmt.Sprintf("bf-tage-%d", n), fmt.Sprintf("bf-isl-tage-%d", n))
	}
	return names
}

func predictorByName(name string) (func() bfbp.Predictor, error) {
	switch name {
	case "bimodal":
		return func() bfbp.Predictor { return bfbp.NewBimodal(1 << 14) }, nil
	case "gshare":
		return func() bfbp.Predictor { return bfbp.NewGShare(1<<16, 16) }, nil
	case "local":
		return func() bfbp.Predictor { return bfbp.NewLocal(1<<12, 10, 1<<15) }, nil
	case "perceptron":
		return func() bfbp.Predictor { return bfbp.NewPerceptron(bfbp.Perceptron64KB()) }, nil
	case "perceptron-fhist":
		return func() bfbp.Predictor {
			c := bfbp.Perceptron64KB()
			c.FoldedHistory = true
			return bfbp.NewPerceptron(c)
		}, nil
	case "oh-snap":
		return func() bfbp.Predictor { return bfbp.NewOHSNAP(bfbp.OHSNAP64KB()) }, nil
	case "tournament":
		return func() bfbp.Predictor { return bfbp.NewTournament(bfbp.Tournament64KB()) }, nil
	case "yags":
		return func() bfbp.Predictor { return bfbp.NewYAGS(bfbp.YAGS64KB()) }, nil
	case "filter":
		return func() bfbp.Predictor { return bfbp.NewFilter(bfbp.Filter64KB()) }, nil
	case "o-gehl":
		return func() bfbp.Predictor { return bfbp.NewGEHL(bfbp.GEHL64KB()) }, nil
	case "bf-gehl":
		return func() bfbp.Predictor { return bfbp.NewBFGEHL(bfbp.BFGEHL64KB()) }, nil
	case "strided":
		return func() bfbp.Predictor { return bfbp.NewStrided(bfbp.Strided64KB()) }, nil
	case "bf-neural":
		return func() bfbp.Predictor { return bfbp.NewBFNeural(bfbp.BFNeural64KB()) }, nil
	case "bf-neural-32k":
		return func() bfbp.Predictor { return bfbp.NewBFNeural(bfbp.BFNeural32KB()) }, nil
	case "bf-neural-fweights":
		return func() bfbp.Predictor { return bfbp.NewBFNeural(bfbp.BFNeuralAblation(bfbp.BFModeFilterWeights)) }, nil
	case "bf-neural-ghist":
		return func() bfbp.Predictor { return bfbp.NewBFNeural(bfbp.BFNeuralAblation(bfbp.BFModeBiasFreeGHR)) }, nil
	}
	for _, pat := range []struct {
		prefix string
		lo, hi int
		mk     func(n int) func() bfbp.Predictor
	}{
		{"isl-tage-", 4, 15, func(n int) func() bfbp.Predictor {
			return func() bfbp.Predictor { return bfbp.NewTAGE(bfbp.ISLTAGE(n)) }
		}},
		{"tage-", 1, 15, func(n int) func() bfbp.Predictor {
			return func() bfbp.Predictor { return bfbp.NewTAGE(bfbp.TAGEBare(n)) }
		}},
		{"bf-isl-tage-", 4, 10, func(n int) func() bfbp.Predictor {
			return func() bfbp.Predictor { return bfbp.NewBFTAGE(bfbp.BFISLTAGE(n)) }
		}},
		{"bf-tage-", 4, 10, func(n int) func() bfbp.Predictor {
			return func() bfbp.Predictor { return bfbp.NewBFTAGE(bfbp.BFTAGEBare(n)) }
		}},
	} {
		if strings.HasPrefix(name, pat.prefix) {
			n, err := strconv.Atoi(strings.TrimPrefix(name, pat.prefix))
			if err != nil || n < pat.lo || n > pat.hi {
				return nil, fmt.Errorf("bfsim: %q needs a table count in [%d,%d]", name, pat.lo, pat.hi)
			}
			return pat.mk(n), nil
		}
	}
	return nil, fmt.Errorf("bfsim: unknown predictor %q (use -list)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfsim:", err)
	os.Exit(1)
}
