// Command bfsim runs branch predictors over traces and reports MPKI,
// mimicking the CBP evaluation flow. Multiple predictors and traces run
// as a matrix on the suite engine: parallel workers, streaming synthetic
// traces, Ctrl-C cancellation.
//
// Usage:
//
//	bfsim -p bf-neural -t SPEC03                 # synthetic trace by name
//	bfsim -p bf-tage-10,isl-tage-15 -t SPEC03    # compare predictors
//	bfsim -p bf-neural -t SPEC03,SERV1,MM2       # several traces
//	bfsim -p tage-10 -f trace.bft                # trace from a file
//	bfsim -p bf-neural -t SPEC03 -n 1000000      # trace length
//	bfsim -p bf-neural -t SPEC03 -window 50000   # phase-resolved MPKI
//	bfsim -p oh-snap,bf-neural -t all -csv       # engine CSV output
//	bfsim -p bf-neural -t all -json -workers 4   # engine JSON output
//	bfsim -p bf-tage-10 -t SERV3 -offenders 10   # top mispredicted PCs
//	bfsim -p bf-tage-10 -t SPEC00 -tablehits     # provider histogram
//	bfsim -p bf-tage-10 -t SERV1 -explain        # cause taxonomy + attribution
//	bfsim -p bf-neural -storage                  # storage budget only
//	bfsim -list                                  # available predictors
//
// Long suite runs can be observed live:
//
//	bfsim -p all-suite... -metrics-addr :8080    # /metrics, /debug/vars, /debug/pprof
//	bfsim ... -journal run.jsonl                 # bfbp.journal.v1 event log
//	bfsim ... -heartbeat 10s                     # periodic stderr progress line
//	bfsim ... -trace-out run.trace.json          # bfbp.trace.v1 span timeline (Perfetto)
//	bfsim ... -runtime-trace run.rtrace          # Go runtime/trace with bridged spans
//
// Run-to-completion profiles land in files for `go tool pprof`:
//
//	bfsim ... -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Predictor names come from the bfbp registry (use -list for the full
// set with descriptions); -t accepts trace names, comma lists, or "all"
// for the 40-trace suite.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"bfbp"
	"bfbp/internal/analysis"
	"bfbp/internal/prof"
	"bfbp/internal/telemetry"
	"bfbp/internal/trace"
)

func main() {
	var (
		preds     = flag.String("p", "bf-neural", "comma-separated registry predictor names")
		traceName = flag.String("t", "", `synthetic trace name(s), comma-separated, or "all"`)
		traceFile = flag.String("f", "", "trace file in BFT1 format")
		branches  = flag.Int("n", 500_000, "dynamic branches for synthetic traces")
		warmup    = flag.Int("warmup", -1, "warmup branches excluded from stats (-1 = 10%)")
		delay     = flag.Int("delay", 0, "update delay in branches (pipeline model)")
		window    = flag.Uint64("window", 0, "record an MPKI series per N post-warmup branches")
		workers   = flag.Int("workers", 0, "parallel engine workers (0 = GOMAXPROCS)")
		csvOut    = flag.Bool("csv", false, "emit engine results as CSV")
		jsonOut   = flag.Bool("json", false, "emit engine results (and window series) as JSON")
		offenders = flag.Int("offenders", 0, "print the top-N mispredicted PCs")
		tableHits = flag.Bool("tablehits", false, "print the provider-table histogram")
		explain   = flag.Bool("explain", false, "collect decision provenance (cause taxonomy, component/bank attribution)")
		explainNN = flag.Uint64("explain-sample", 0, "confidence-margin sample period for -explain (power of two; 0 = 64)")
		storage   = flag.Bool("storage", false, "print the storage budget and exit")
		list      = flag.Bool("list", false, "list available predictor names")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address")
		journalPath = flag.String("journal", "", "write bfbp.journal.v1 JSONL events to this file")
		heartbeat   = flag.Duration("heartbeat", 0, "print an engine-progress line to stderr at this period (0 = off)")
		traceOut    = flag.String("trace-out", "", "write a bfbp.trace.v1 span timeline (Perfetto/chrome://tracing JSON) to this file")
		rtraceOut   = flag.String("runtime-trace", "", "capture a Go runtime/trace (with bridged spans) to this file")
	)
	prof.Flags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, info := range bfbp.Predictors() {
			fmt.Printf("%-20s %s\n", info.Name, info.Description)
		}
		return
	}

	var specs []bfbp.PredictorSpec
	for _, name := range strings.Split(*preds, ",") {
		info, err := bfbp.PredictorByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		specs = append(specs, info.Spec())
	}

	if *storage {
		for _, spec := range specs {
			p := spec.New()
			if sa, ok := p.(bfbp.StorageAccounter); ok {
				fmt.Print(sa.Storage().String())
			} else {
				fmt.Printf("%s: no storage accounting\n", p.Name())
			}
		}
		return
	}

	sources, defaultWarm, err := traceSources(*traceFile, *traceName, *branches)
	if err != nil {
		fatal(err)
	}

	warm := uint64(defaultWarm)
	if *warmup >= 0 {
		warm = uint64(*warmup)
	}
	tel, err := telemetry.Start(telemetry.Config{
		MetricsAddr:      *metricsAddr,
		JournalPath:      *journalPath,
		Heartbeat:        *heartbeat,
		TracePath:        *traceOut,
		RuntimeTracePath: *rtraceOut,
	})
	if err != nil {
		fatal(err)
	}
	defer tel.Close()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	eng := bfbp.Engine{
		Workers: *workers,
		Options: bfbp.Options{
			Warmup:       warm,
			UpdateDelay:  *delay,
			PerPC:        *offenders > 0,
			Window:       *window,
			Explain:      *explain,
			ExplainEvery: *explainNN,
		},
	}
	tel.Attach(&eng)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := eng.Run(ctx, bfbp.Matrix(sources, specs, eng.Options))
	if err != nil {
		// Seal the trace/journal before exiting so a cancelled run's
		// partial timeline still loads cleanly (fatal skips defers).
		tel.Close()
		fatal(err)
	}
	if err := tel.Close(); err != nil {
		fatal(err)
	}

	switch {
	case *csvOut:
		if err := bfbp.WriteCSV(os.Stdout, results); err != nil {
			fatal(err)
		}
	case *jsonOut:
		if err := bfbp.WriteJSON(os.Stdout, results); err != nil {
			fatal(err)
		}
	default:
		printText(results, len(sources) > 1, *offenders, *tableHits)
	}
}

// traceSources resolves the -f/-t flags into engine trace sources and
// the default warmup (10% of the trace length).
func traceSources(file, names string, branches int) ([]bfbp.TraceSource, int, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		tr, err := trace.Collect(trace.NewFileReader(f))
		if err != nil {
			return nil, 0, err
		}
		return []bfbp.TraceSource{tr.Source(file)}, len(tr) / 10, nil
	}
	if names == "" {
		return nil, 0, fmt.Errorf("need -t <trace> or -f <file>")
	}
	want := strings.Split(names, ",")
	if names == "all" {
		want = bfbp.TraceNames()
	}
	var out []bfbp.TraceSource
	for _, name := range want {
		spec, ok := bfbp.TraceByName(strings.TrimSpace(name))
		if !ok {
			return nil, 0, fmt.Errorf("unknown trace %q (known: %s...)", name, strings.Join(bfbp.TraceNames()[:5], ", "))
		}
		out = append(out, spec.Source(branches))
	}
	return out, branches / 10, nil
}

func printText(results []bfbp.RunResult, showTrace bool, offenders int, tableHits bool) {
	if showTrace {
		fmt.Printf("%-10s ", "trace")
	}
	fmt.Printf("%-18s %10s %12s %10s\n", "predictor", "MPKI", "mispredicts", "accuracy")
	for _, r := range results {
		if showTrace {
			fmt.Printf("%-10s ", r.Trace)
		}
		fmt.Printf("%-18s %10.3f %12d %9.2f%%\n", r.Predictor, r.Stats.MPKI(), r.Stats.Mispredicts, 100*r.Stats.Accuracy())
		if r.Stats.Window > 0 {
			fmt.Printf("    window MPKI (per %d branches):", r.Stats.Window)
			for _, w := range r.Stats.Windows {
				fmt.Printf(" %.2f", w.MPKI())
			}
			fmt.Println()
		}
		if offenders > 0 {
			fmt.Print(indent(analysis.TopOffendersReport(r.Stats, nil, offenders)))
		}
		if pv := r.Stats.Provenance; pv != nil {
			fmt.Print(indent(analysis.CauseBreakdownReport(r.Predictor, pv)))
			fmt.Print(indent(analysis.ComponentReport(pv)))
			if banks := analysis.BankUtilizationReport(pv); banks != "" {
				fmt.Print(indent(banks))
			}
		}
		if tableHits {
			if th, ok := r.Instance.(bfbp.TableHitReporter); ok {
				hits := th.TableHits()
				var total uint64
				for _, h := range hits {
					total += h
				}
				fmt.Printf("    provider histogram (T0 = base):\n")
				for i, h := range hits {
					if total > 0 {
						fmt.Printf("      T%-2d %8d (%.1f%%)\n", i, h, 100*float64(h)/float64(total))
					}
				}
			}
		}
	}
}

// indent prefixes every non-empty line of a report for nesting under a
// result row.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = "    " + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfsim:", err)
	os.Exit(1)
}
