// Command bfsim runs branch predictors over traces and reports MPKI,
// mimicking the CBP evaluation flow. Multiple predictors and traces run
// as a matrix on the suite engine: parallel workers, streaming synthetic
// traces, Ctrl-C cancellation.
//
// Usage:
//
//	bfsim -p bf-neural -t SPEC03                 # synthetic trace by name
//	bfsim -p bf-tage-10,isl-tage-15 -t SPEC03    # compare predictors
//	bfsim -p bf-neural -t SPEC03,SERV1,MM2       # several traces
//	bfsim -p tage-10 -f trace.bft                # trace from a file
//	bfsim -p bf-neural -t SPEC03 -n 1000000      # trace length
//	bfsim -p bf-neural -t SPEC03 -window 50000   # phase-resolved MPKI
//	bfsim -p oh-snap,bf-neural -t all -csv       # engine CSV output
//	bfsim -p bf-neural -t all -json -workers 4   # engine JSON output
//	bfsim -p bf-tage-10 -t SERV3 -offenders 10   # top mispredicted PCs
//	bfsim -p bf-tage-10 -t SPEC00 -tablehits     # provider histogram
//	bfsim -p bf-tage-10 -t SERV1 -explain        # cause taxonomy + attribution
//	bfsim -p bf-neural -storage                  # storage budget only
//	bfsim -list                                  # available predictors
//
// Predictor state snapshots (bfbp.state.v1) checkpoint and resume runs:
//
//	bfsim -p bf-neural -t SPEC03 -checkpoint s.state             # save at run end
//	bfsim ... -checkpoint s.state -checkpoint-every 100000       # also periodically
//	bfsim -p bf-neural -t SPEC03 -resume s.state -skip 100000    # continue from it
//
// Long suite runs can be observed live:
//
//	bfsim -p all-suite... -metrics-addr :8080    # /metrics, /debug/vars, /debug/pprof,
//	                                             # /metrics/history ring, /healthz rules
//	                                             # (watch live with cmd/bfstat)
//	bfsim ... -journal run.jsonl                 # bfbp.journal.v1 event log
//	bfsim ... -heartbeat 10s                     # periodic stderr progress + health line
//	bfsim ... -probe-state                       # table/state X-ray: occupancy metrics,
//	                                             # tablestats journal events, counter tracks
//	bfsim ... -trace-out run.trace.json          # bfbp.trace.v1 span timeline (Perfetto)
//	bfsim ... -runtime-trace run.rtrace          # Go runtime/trace with bridged spans
//
// Phase and drift observability (see DESIGN.md §6): -drift runs
// streaming change-point detectors over every windowed (trace,
// predictor) MPKI series and the engine throughput, emitting `drift`
// journal events, Perfetto counter tracks (with alarm instants) on the
// -trace-out timeline, and bfbp_drift_* metrics; -flight-dump keeps a
// ring of recent journal lines and snapshots it (bfbp.flight.v1) on
// every alarm and on SIGQUIT; -endurance splices reseeded synthetic
// segments into one long phase-shifting run:
//
//	bfsim -p bf-tage-10 -t SERV1,FP1,MM1 -n 1000000 -endurance 20 \
//	      -drift -journal run.jsonl -trace-out run.trace.json \
//	      -flight-dump flight.json            # 60M-branch mixed-phase run
//
// Run-to-completion profiles land in files for `go tool pprof`:
//
//	bfsim ... -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Predictor names come from the bfbp registry (use -list for the full
// set with descriptions); -t accepts trace names, comma lists, or "all"
// for the 40-trace suite.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"bfbp"
	"bfbp/internal/analysis"
	"bfbp/internal/prof"
	"bfbp/internal/sim"
	"bfbp/internal/telemetry"
	"bfbp/internal/trace"
)

func main() {
	var (
		preds     = flag.String("p", "bf-neural", "comma-separated registry predictor names")
		traceName = flag.String("t", "", `synthetic trace name(s), comma-separated, or "all"`)
		traceFile = flag.String("f", "", "trace file in BFT1 format")
		branches  = flag.Int("n", 500_000, "dynamic branches for synthetic traces")
		warmup    = flag.Int("warmup", -1, "warmup branches excluded from stats (-1 = 10%)")
		delay     = flag.Int("delay", 0, "update delay in branches (pipeline model)")
		window    = flag.Uint64("window", 0, "record an MPKI series per N post-warmup branches")
		workers   = flag.Int("workers", 0, "parallel engine workers (0 = GOMAXPROCS)")
		csvOut    = flag.Bool("csv", false, "emit engine results as CSV")
		jsonOut   = flag.Bool("json", false, "emit engine results (and window series) as JSON")
		offenders = flag.Int("offenders", 0, "print the top-N mispredicted PCs")
		tableHits = flag.Bool("tablehits", false, "print the provider-table histogram")
		explain   = flag.Bool("explain", false, "collect decision provenance (cause taxonomy, component/bank attribution)")
		explainNN = flag.Uint64("explain-sample", 0, "confidence-margin sample period for -explain (power of two; 0 = 64)")
		storage   = flag.Bool("storage", false, "print the storage budget and exit")
		list      = flag.Bool("list", false, "list available predictor names")

		checkpointPath  = flag.String("checkpoint", "", "write a bfbp.state.v1 predictor snapshot here at run end")
		checkpointEvery = flag.Uint64("checkpoint-every", 0, "with -checkpoint, also snapshot every N branches (overwrites the file)")
		resumePath      = flag.String("resume", "", "load a bfbp.state.v1 predictor snapshot before the run")
		skip            = flag.Int("skip", 0, "discard the first N trace records (fast-forward a resumed trace)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics/history, /healthz, /debug/pprof on this address")
		journalPath = flag.String("journal", "", "write bfbp.journal.v1 JSONL events to this file")
		heartbeat   = flag.Duration("heartbeat", 0, "print an engine-progress line to stderr at this period (0 = off)")
		traceOut    = flag.String("trace-out", "", "write a bfbp.trace.v1 span timeline (Perfetto/chrome://tracing JSON) to this file")
		rtraceOut   = flag.String("runtime-trace", "", "capture a Go runtime/trace (with bridged spans) to this file")

		probeState      = flag.Bool("probe-state", false, "sample predictor table/state internals periodically (occupancy metrics, tablestats journal events, Perfetto counter tracks)")
		probeStateEvery = flag.Uint64("probe-state-every", 65536, "with -probe-state, sample every N branches (quantised to batch boundaries)")

		endurance  = flag.Int("endurance", 0, "splice the -t traces into one continuous run of N laps, -n branches per segment, reseeded per lap (phase-shifting long-run mode)")
		drift      = flag.Bool("drift", false, "run streaming change-point detectors over windowed MPKI and engine throughput (drift journal events, counter tracks, alarm metrics)")
		flightDump = flag.String("flight-dump", "", "write a bfbp.flight.v1 flight-recorder snapshot to this file on every drift alarm and on SIGQUIT (implies -drift)")
	)
	prof.Flags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, info := range bfbp.Predictors() {
			fmt.Printf("%-20s %-62s [%s]\n", info.Name, info.Description,
				strings.Join(info.Capabilities().Names(), " "))
		}
		return
	}

	infos, err := bfbp.SelectPredictors(*preds)
	if err != nil {
		fatal(err)
	}
	specs := make([]bfbp.PredictorSpec, len(infos))
	for i, info := range infos {
		specs[i] = info.Spec()
	}

	if *storage {
		for _, spec := range specs {
			p := spec.New()
			if caps := bfbp.Capabilities(p); caps.Storage != nil {
				fmt.Print(caps.Storage.Storage().String())
			} else {
				fmt.Printf("%s: no storage accounting\n", p.Name())
			}
		}
		return
	}

	sources, defaultWarm, err := traceSources(*traceFile, *traceName, *branches)
	if err != nil {
		fatal(err)
	}
	if *endurance > 0 {
		if *traceFile != "" {
			fatal(fmt.Errorf("-endurance needs synthetic -t traces, not -f"))
		}
		sources, err = enduranceSources(*traceName, *endurance, *branches)
		if err != nil {
			fatal(err)
		}
		// Phase detection needs a windowed series; default to ten
		// windows per segment so every splice point is visible.
		if *window == 0 {
			*window = uint64(*branches / 10)
			if *window == 0 {
				*window = 1
			}
		}
	}

	if *checkpointPath != "" || *resumePath != "" || *skip > 0 {
		if len(specs) != 1 || len(sources) != 1 {
			fatal(fmt.Errorf("-checkpoint/-resume/-skip need exactly one predictor and one trace"))
		}
		if *delay != 0 && *checkpointPath != "" {
			fatal(fmt.Errorf("-checkpoint requires -delay 0: snapshots must be quiescent"))
		}
	}
	if *checkpointEvery > 0 && *checkpointPath == "" {
		fatal(fmt.Errorf("-checkpoint-every needs -checkpoint <path>"))
	}
	if *resumePath != "" {
		// Validate the file and predictor support up front, then rebuild
		// the spec so every fresh instance starts from the snapshot.
		if err := loadSnapshot(specs[0].New(), *resumePath); err != nil {
			fatal(err)
		}
		orig, path := specs[0].New, *resumePath
		specs[0].New = func() bfbp.Predictor {
			p := orig()
			if err := loadSnapshot(p, path); err != nil {
				fatal(err)
			}
			return p
		}
	}
	if *skip > 0 {
		src, n := sources[0], *skip
		sources[0] = bfbp.FuncSource{Label: src.Name(), OpenFn: func() bfbp.TraceReader {
			return trace.Skip(src.Open(), n)
		}}
	}

	warm := uint64(defaultWarm)
	if *warmup >= 0 {
		warm = uint64(*warmup)
	}
	tel, err := telemetry.Start(telemetry.Config{
		MetricsAddr:      *metricsAddr,
		JournalPath:      *journalPath,
		Heartbeat:        *heartbeat,
		TracePath:        *traceOut,
		RuntimeTracePath: *rtraceOut,
		Drift:            *drift,
		FlightPath:       *flightDump,
	})
	if err != nil {
		fatal(err)
	}
	defer tel.Close()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	eng := bfbp.Engine{
		Workers: *workers,
		Options: bfbp.Options{
			Warmup:       warm,
			UpdateDelay:  *delay,
			PerPC:        *offenders > 0,
			Window:       *window,
			Explain:      *explain,
			ExplainEvery: *explainNN,
		},
	}
	tel.Attach(&eng)
	if *probeState {
		// Must land before the Matrix call below: every job shares this
		// Options snapshot. The engine injects the default sink (metrics
		// + journal + counter tracks) for any predictor with StateProbe.
		eng.Options.ProbeStateEvery = *probeStateEvery
	}
	if *checkpointEvery > 0 {
		path, tname, pname := *checkpointPath, sources[0].Name(), specs[0].Name
		jr := tel.RunJournal()
		eng.Options.CheckpointEvery = *checkpointEvery
		eng.Options.CheckpointFn = func(p bfbp.Predictor, branches uint64) error {
			n, err := saveSnapshot(p, path)
			if err != nil {
				return err
			}
			sim.JournalCheckpoint(jr, tname, pname, path, branches, n, 0)
			return nil
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := eng.Run(ctx, bfbp.Matrix(sources, specs, eng.Options))
	if err != nil {
		// Seal the trace/journal before exiting so a cancelled run's
		// partial timeline still loads cleanly (fatal skips defers).
		tel.Close()
		fatal(err)
	}
	if *checkpointPath != "" {
		n, err := saveSnapshot(results[0].Instance, *checkpointPath)
		if err != nil {
			tel.Close()
			fatal(err)
		}
		sim.JournalCheckpoint(tel.RunJournal(), sources[0].Name(), specs[0].Name,
			*checkpointPath, results[0].Stats.Branches, n, 0)
		fmt.Fprintf(os.Stderr, "bfsim: checkpoint %s (%d bytes, branch %d)\n",
			*checkpointPath, n, results[0].Stats.Branches)
	}
	if err := tel.Close(); err != nil {
		fatal(err)
	}

	switch {
	case *csvOut:
		if err := bfbp.WriteCSV(os.Stdout, results); err != nil {
			fatal(err)
		}
	case *jsonOut:
		if err := bfbp.WriteJSON(os.Stdout, results); err != nil {
			fatal(err)
		}
	default:
		printText(results, len(sources) > 1, *offenders, *tableHits)
	}
}

// traceSources resolves the -f/-t flags into engine trace sources and
// the default warmup (10% of the trace length).
func traceSources(file, names string, branches int) ([]bfbp.TraceSource, int, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		tr, err := trace.Collect(trace.NewFileReader(f))
		if err != nil {
			return nil, 0, err
		}
		return []bfbp.TraceSource{tr.Source(file)}, len(tr) / 10, nil
	}
	if names == "" {
		return nil, 0, fmt.Errorf("need -t <trace> or -f <file>")
	}
	want := strings.Split(names, ",")
	if names == "all" {
		want = bfbp.TraceNames()
	}
	var out []bfbp.TraceSource
	for _, name := range want {
		spec, ok := bfbp.TraceByName(strings.TrimSpace(name))
		if !ok {
			return nil, 0, fmt.Errorf("unknown trace %q (known: %s...)", name, strings.Join(bfbp.TraceNames()[:5], ", "))
		}
		out = append(out, spec.Source(branches))
	}
	return out, branches / 10, nil
}

// enduranceSources splices the named synthetic traces into one
// continuous source: laps round-robin passes over the trace list, one
// segment of branches records each, every lap reseeded so no segment
// repeats byte-for-byte. Segments are materialised lazily as the read
// cursor reaches them, so a 50M-branch endurance run holds one open
// segment at a time. The trace-family changes at every splice point
// are exactly the MPKI phase shifts the drift layer detects.
func enduranceSources(names string, laps, branches int) ([]bfbp.TraceSource, error) {
	if names == "" {
		return nil, fmt.Errorf("-endurance needs -t <traces>")
	}
	want := strings.Split(names, ",")
	if names == "all" {
		want = bfbp.TraceNames()
	}
	specs := make([]bfbp.TraceSpec, 0, len(want))
	for _, name := range want {
		spec, ok := bfbp.TraceByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown trace %q", name)
		}
		specs = append(specs, spec)
	}
	label := fmt.Sprintf("endurance(%s x%d)", names, laps)
	total := laps * len(specs)
	src := bfbp.FuncSource{Label: label, OpenFn: func() bfbp.TraceReader {
		i := 0
		return trace.ConcatFunc(func() trace.Reader {
			if i >= total {
				return nil
			}
			spec := specs[i%len(specs)].Reseed(uint64(i / len(specs)))
			i++
			return spec.Stream(branches)
		})
	}}
	return []bfbp.TraceSource{src}, nil
}

func printText(results []bfbp.RunResult, showTrace bool, offenders int, tableHits bool) {
	if showTrace {
		fmt.Printf("%-10s ", "trace")
	}
	fmt.Printf("%-18s %10s %12s %10s\n", "predictor", "MPKI", "mispredicts", "accuracy")
	for _, r := range results {
		if showTrace {
			fmt.Printf("%-10s ", r.Trace)
		}
		fmt.Printf("%-18s %10.3f %12d %9.2f%%\n", r.Predictor, r.Stats.MPKI(), r.Stats.Mispredicts, 100*r.Stats.Accuracy())
		if r.Stats.Window > 0 {
			fmt.Printf("    window MPKI (per %d branches):", r.Stats.Window)
			for _, w := range r.Stats.Windows {
				fmt.Printf(" %.2f", w.MPKI())
			}
			fmt.Println()
		}
		if offenders > 0 {
			fmt.Print(indent(analysis.TopOffendersReport(r.Stats, nil, offenders)))
		}
		if pv := r.Stats.Provenance; pv != nil {
			fmt.Print(indent(analysis.CauseBreakdownReport(r.Predictor, pv)))
			fmt.Print(indent(analysis.ComponentReport(pv)))
			if banks := analysis.BankUtilizationReport(pv); banks != "" {
				fmt.Print(indent(banks))
			}
		}
		if tableHits {
			if th := bfbp.Capabilities(r.Instance).TableHits; th != nil {
				hits := th.TableHits()
				var total uint64
				for _, h := range hits {
					total += h
				}
				fmt.Printf("    provider histogram (T0 = base):\n")
				for i, h := range hits {
					if total > 0 {
						fmt.Printf("      T%-2d %8d (%.1f%%)\n", i, h, 100*float64(h)/float64(total))
					}
				}
			}
		}
	}
}

// indent prefixes every non-empty line of a report for nesting under a
// result row.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = "    " + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// saveSnapshot serialises p into a bfbp.state.v1 file at path. The
// whole snapshot is built in memory first so a failed save never
// leaves a truncated file behind.
func saveSnapshot(p bfbp.Predictor, path string) (int, error) {
	snap := bfbp.Capabilities(p).Snapshot
	if snap == nil {
		return 0, fmt.Errorf("%T does not support snapshots", p)
	}
	var buf bytes.Buffer
	if err := snap.SaveState(&buf); err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

// loadSnapshot restores p from a bfbp.state.v1 file at path.
func loadSnapshot(p bfbp.Predictor, path string) error {
	snap := bfbp.Capabilities(p).Snapshot
	if snap == nil {
		return fmt.Errorf("%T does not support snapshots", p)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return snap.LoadState(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfsim:", err)
	os.Exit(1)
}
