// Package bfbp is a from-scratch Go reproduction of "Bias-Free Branch
// Predictor" (Gope & Lipasti, MICRO 2014): the BF-Neural and BF-TAGE
// predictors, every baseline the paper compares against (perceptron,
// OH-SNAP, TAGE/ISL-TAGE), a CBP-style trace-driven simulation harness,
// and a synthetic 40-trace workload suite standing in for the CBP-4
// traces.
//
// Quick start:
//
//	spec, _ := bfbp.TraceByName("SPEC03")
//	tr := spec.GenerateN(200_000)
//	p := bfbp.NewBFNeural(bfbp.BFNeural64KB())
//	stats, _ := bfbp.Run(p, tr.Stream(), bfbp.Options{Warmup: 20_000})
//	fmt.Printf("MPKI = %.3f\n", stats.MPKI())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every figure and table.
package bfbp

import (
	"context"
	"errors"
	"io"
	"net/http"
	"time"

	"bfbp/internal/bst"
	"bfbp/internal/core/bfgehl"
	"bfbp/internal/core/bfneural"
	"bfbp/internal/core/bftage"
	"bfbp/internal/obs"
	"bfbp/internal/predictor/bimodal"
	"bfbp/internal/predictor/filter"
	"bfbp/internal/predictor/gehl"
	"bfbp/internal/predictor/gshare"
	"bfbp/internal/predictor/local"
	"bfbp/internal/predictor/ohsnap"
	"bfbp/internal/predictor/perceptron"
	"bfbp/internal/predictor/strided"
	"bfbp/internal/predictor/tage"
	"bfbp/internal/predictor/tournament"
	"bfbp/internal/predictor/yags"
	"bfbp/internal/sim"
	"bfbp/internal/state"
	"bfbp/internal/trace"
	"bfbp/internal/workload"
)

// Core simulation types, re-exported from the harness.
type (
	// Predictor is the interface every branch predictor implements.
	Predictor = sim.Predictor
	// StorageAccounter reports a predictor's hardware budget.
	StorageAccounter = sim.StorageAccounter
	// TableHitReporter exposes per-table provider counts (TAGE family).
	TableHitReporter = sim.TableHitReporter
	// Stats holds accuracy results of a run.
	Stats = sim.Stats
	// WindowStat is one fixed-branch-window slice of a run's MPKI series.
	WindowStat = sim.WindowStat
	// Options configures a run (warmup, update delay, per-PC stats,
	// windowed metrics).
	Options = sim.Options
	// Result pairs a predictor name with its stats.
	Result = sim.Result
	// Breakdown is an itemised storage budget.
	Breakdown = sim.Breakdown
)

// Suite-engine types, re-exported from the harness.
type (
	// Engine evaluates (predictor × trace) matrices on a worker pool with
	// deterministic result ordering and context cancellation.
	Engine = sim.Engine
	// Job is one cell of an evaluation matrix.
	Job = sim.Job
	// PredictorSpec names a predictor and constructs fresh instances.
	PredictorSpec = sim.PredictorSpec
	// TraceSource names a trace and opens fresh readers over it.
	TraceSource = sim.TraceSource
	// FuncSource adapts a label and open function to TraceSource.
	FuncSource = sim.FuncSource
	// SpecSource is the streaming TraceSource of a synthetic trace spec;
	// build one with TraceSpec.Source(n).
	SpecSource = workload.SpecSource
	// TraceSliceSource is the in-memory TraceSource of a materialised
	// trace; build one with Trace.Source(name).
	TraceSliceSource = trace.NamedSlice
	// RunResult is one completed engine cell.
	RunResult = sim.RunResult
	// ProgressEvent reports one completed engine cell.
	ProgressEvent = sim.ProgressEvent
)

// Observability types, re-exported from internal/obs and the harness.
// See DESIGN.md §Observability for the metric names and the
// bfbp.journal.v1 event schema.
type (
	// MetricsRegistry holds named metrics with Prometheus-text and
	// expvar-style JSON export (WritePrometheus / WriteJSON).
	MetricsRegistry = obs.Registry
	// MetricsCounter is an atomic monotonic counter.
	MetricsCounter = obs.Counter
	// MetricsGauge is an atomic instantaneous value.
	MetricsGauge = obs.Gauge
	// MetricsHistogram is a fixed-bucket lock-free histogram.
	MetricsHistogram = obs.Histogram
	// MetricsQuantile is an HDR-style log-linear quantile histogram
	// (p50/p90/p99/p999 within obs.QuantileRelError relative error),
	// exported as a Prometheus summary.
	MetricsQuantile = obs.QuantileHistogram
	// MetricsFloatGauge is an atomic float64 instantaneous value.
	MetricsFloatGauge = obs.FloatGauge
	// RuntimeCollector bridges runtime/metrics (heap, goroutines, GC
	// pauses, scheduler latency) into a registry as bfbp_runtime_*.
	RuntimeCollector = obs.RuntimeCollector
	// MetricsHistory is a fixed-depth in-process time-series ring of
	// registry scrapes, served as bfbp.history.v1 at /metrics/history.
	MetricsHistory = obs.History
	// HistoryPoint is one flattened scrape in a MetricsHistory ring.
	HistoryPoint = obs.HistoryPoint
	// Health evaluates declarative HealthRules against scrapes and
	// aggregates them into a HealthState (behind /healthz).
	Health = obs.Health
	// HealthRule is one declarative threshold/rate rule.
	HealthRule = obs.HealthRule
	// HealthState is the aggregate run-health verdict.
	HealthState = obs.HealthState
	// Journal writes bfbp.journal.v1 JSONL run events.
	Journal = obs.Journal
	// Tracer records hierarchical execution spans as a bfbp.trace.v1
	// timeline (Chrome trace-event JSON, loadable in Perfetto); assign
	// to Engine.Tracer.
	Tracer = obs.Tracer
	// Span is one timed slice of a Tracer's timeline.
	Span = obs.Span
	// DriftDetector is a streaming change-point detector (EWMA baseline
	// + Page-Hinkley alarm) over one metric series.
	DriftDetector = obs.DriftDetector
	// DriftConfig parameterises a DriftDetector; the zero value selects
	// sane defaults.
	DriftConfig = obs.DriftConfig
	// DriftEvent describes one change-point alarm.
	DriftEvent = obs.DriftEvent
	// DriftState is a point-in-time snapshot of a DriftDetector.
	DriftState = obs.DriftState
	// FlightRecorder is a bounded ring of recent journal lines; tee a
	// Journal's writer through it and Snapshot on incidents.
	FlightRecorder = obs.FlightRecorder
	// FlightDump is one bfbp.flight.v1 incident snapshot.
	FlightDump = obs.FlightDump
	// WindowEvent is one closed metrics window, delivered to
	// Options.OnWindow / Engine.WindowHook as a run progresses.
	WindowEvent = sim.WindowEvent
	// EngineMetrics is the engine metric set; assign to Engine.Metrics.
	EngineMetrics = sim.EngineMetrics
	// EngineSnapshot is a point-in-time read of the engine metrics.
	EngineSnapshot = sim.EngineSnapshot
	// HarnessProbe samples predict/update latencies in the harness hot
	// loop; assign to Options.Probe.
	HarnessProbe = sim.HarnessProbe
)

// Decision-provenance types, re-exported from the harness. Enable with
// Options.Explain on predictors implementing Explainer; the harness
// then fills Stats.Provenance with the misprediction taxonomy and
// component/bank attribution.
type (
	// Explainer describes a predictor's most recent prediction.
	Explainer = sim.Explainer
	// BankReacher reports per-tagged-bank raw-branch history reach.
	BankReacher = sim.BankReacher
	// Provenance describes how one prediction was made.
	Provenance = sim.Provenance
	// WeightContrib is one signed adder-tree contribution.
	WeightContrib = sim.WeightContrib
	// ProvenanceStats aggregates a run's decision trace.
	ProvenanceStats = sim.ProvenanceStats
	// ComponentStat counts predictions attributed to one component.
	ComponentStat = sim.ComponentStat
)

// State-snapshot types (bfbp.state.v1), re-exported from the harness
// and internal/state. See DESIGN.md §State snapshots for the format.
type (
	// Snapshotter is the optional interface for predictors whose state
	// serialises to the bfbp.state.v1 format and restores bit-exactly.
	// Every registry predictor implements it.
	Snapshotter = sim.Snapshotter
	// CapabilitySet holds a predictor's optional interfaces, each nil
	// when unimplemented.
	CapabilitySet = sim.CapabilitySet
	// SnapshotHeader is the identity header of a bfbp.state.v1 file:
	// predictor name, config hash, and section directory.
	SnapshotHeader = state.Header
)

// Predictor-internals introspection types, re-exported from the
// harness. Enable periodic sampling with Options.ProbeStateEvery on
// predictors implementing StateProbe; every registry predictor does.
type (
	// StateProbe is the optional interface for predictors that expose
	// internal table statistics for observation-only sampling.
	StateProbe = sim.StateProbe
	// TableStats is one StateProbe sample: per-bank occupancy, weight
	// saturation, and recency-structure fill.
	TableStats = sim.TableStats
	// BankStats describes one table bank (occupancy, conflicts,
	// useful-bit and counter saturation, history length and reach).
	BankStats = sim.BankStats
	// WeightStats describes one weight array (live weights, L1 norm,
	// clamp saturation).
	WeightStats = sim.WeightStats
	// RecencyStats describes one recency-stack segment's fill.
	RecencyStats = sim.RecencyStats
)

// Typed snapshot errors, matchable with errors.Is on Snapshotter.LoadState
// failures.
var (
	// ErrSnapshotBadMagic: the reader is not a bfbp.state snapshot.
	ErrSnapshotBadMagic = state.ErrBadMagic
	// ErrSnapshotVersion: the snapshot version is unsupported.
	ErrSnapshotVersion = state.ErrVersion
	// ErrSnapshotTruncated: the snapshot ended mid-structure.
	ErrSnapshotTruncated = state.ErrTruncated
	// ErrSnapshotCorrupt: a decoded value is structurally impossible.
	ErrSnapshotCorrupt = state.ErrCorrupt
	// ErrSnapshotPredictor: the snapshot names a different predictor.
	ErrSnapshotPredictor = state.ErrPredictorMismatch
	// ErrSnapshotConfig: the snapshot's config hash does not match the
	// loading instance's configuration.
	ErrSnapshotConfig = state.ErrConfigMismatch
)

// Capabilities probes p for every optional interface, replacing
// scattered type asserts: branch on the returned struct's fields.
func Capabilities(p Predictor) CapabilitySet { return sim.Capabilities(p) }

// ReadSnapshotHeader reads just the identity header of a bfbp.state.v1
// stream — enough to tell which predictor a checkpoint file belongs to
// without decoding its payload.
func ReadSnapshotHeader(r io.Reader) (SnapshotHeader, error) { return state.ReadHeader(r) }

// MispredictCauses lists the misprediction taxonomy in classification
// order.
func MispredictCauses() []string { return sim.Causes() }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEngineMetrics registers the bfbp_engine_* / bfbp_harness_* metric
// set on reg; assign the result to Engine.Metrics.
func NewEngineMetrics(reg *MetricsRegistry) *EngineMetrics { return sim.NewEngineMetrics(reg) }

// NewJournal returns a run journal writing bfbp.journal.v1 JSONL
// events to w; assign it to Engine.Journal and Close it when done.
func NewJournal(w io.Writer) *Journal { return obs.NewJournal(w) }

// NewTracer returns an execution-span tracer streaming bfbp.trace.v1
// JSON to w; assign it to Engine.Tracer and Close it when done to seal
// the file. Journal events carry the matching span IDs in their "span"
// field.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// NewDriftDetector returns a streaming change-point detector; feed it
// one value per window with Observe.
func NewDriftDetector(cfg DriftConfig) *DriftDetector { return obs.NewDriftDetector(cfg) }

// NewFlightRecorder returns a flight-recorder ring retaining the last
// depth journal lines (0 selects the default depth); write journal
// output through it (io.MultiWriter) and Snapshot on incidents.
func NewFlightRecorder(depth int) *FlightRecorder { return obs.NewFlightRecorder(depth) }

// ReadFlightDump parses a bfbp.flight.v1 flight-recorder dump.
func ReadFlightDump(r io.Reader) (FlightDump, error) { return obs.ReadFlightDump(r) }

// FlightSchema is the schema tag of flight-recorder dumps.
const FlightSchema = obs.FlightSchema

// ConcatTraces returns a reader that yields each reader's records in
// sequence — the splice primitive behind bfsim -endurance.
func ConcatTraces(readers ...TraceReader) TraceReader { return trace.Concat(readers...) }

// Aggregate health states, ordered by severity.
const (
	HealthOK        = obs.HealthOK
	HealthDegraded  = obs.HealthDegraded
	HealthUnhealthy = obs.HealthUnhealthy
)

// MetricsQuantileRelError is the worst-case relative error of a
// MetricsQuantile estimate.
const MetricsQuantileRelError = obs.QuantileRelError

// NewRuntimeCollector registers the bfbp_runtime_* gauge set on reg;
// call Collect before scrapes (MetricsHistory.BeforeScrape does this
// when wired) or Start a ticker.
func NewRuntimeCollector(reg *MetricsRegistry) *RuntimeCollector { return obs.NewRuntimeCollector(reg) }

// NewMetricsHistory returns a depth-point ring sampling reg every
// interval once Started; serve it with MetricsMuxWith.
func NewMetricsHistory(reg *MetricsRegistry, depth int, interval time.Duration) *MetricsHistory {
	return obs.NewHistory(reg, depth, interval)
}

// NewHealth returns a rule engine over flattened scrapes; wire its
// Sample as a MetricsHistory.OnSample hook.
func NewHealth(rules []HealthRule) *Health { return obs.NewHealth(rules) }

// MetricsMux returns an http.ServeMux serving /metrics (Prometheus
// text), /debug/vars (expvar-style JSON), and /debug/pprof/* for the
// registry — the handler behind the commands' -metrics-addr flag.
func MetricsMux(reg *MetricsRegistry) *http.ServeMux { return obs.NewMux(reg) }

// MetricsMuxWith is MetricsMux plus /metrics/history (hist non-nil)
// and /healthz (health non-nil).
func MetricsMuxWith(reg *MetricsRegistry, hist *MetricsHistory, health *Health) *http.ServeMux {
	return obs.NewMuxWith(reg, hist, health)
}

// Trace types.
type (
	// Record is one committed conditional branch.
	Record = trace.Record
	// TraceReader yields records in commit order.
	TraceReader = trace.Reader
	// Trace is an in-memory branch trace.
	Trace = trace.Slice
)

// Workload types.
type (
	// TraceSpec describes one synthetic benchmark trace.
	TraceSpec = workload.Spec
	// Family is a workload category (SPEC, FP, INT, MM, SERV).
	Family = workload.Family
	// BiasStats summarises a trace's biased-branch population (Fig. 2).
	BiasStats = workload.BiasStats
)

// Run drives a predictor over a trace and returns accuracy statistics.
func Run(p Predictor, r TraceReader, opt Options) (Stats, error) {
	return sim.Run(p, r, opt)
}

// RunContext is Run with context cancellation: it aborts with ctx's
// error as soon as ctx is cancelled.
func RunContext(ctx context.Context, p Predictor, r TraceReader, opt Options) (Stats, error) {
	return sim.RunContext(ctx, p, r, opt)
}

// RunAllSource evaluates several predictors over identical copies of a
// trace source, opening a fresh reader per predictor.
func RunAllSource(preds []Predictor, src TraceSource, opt Options) ([]Result, error) {
	return sim.RunAll(preds, src, opt)
}

// RunAll evaluates several predictors over identical copies of a trace.
//
// Compat adapter for the pre-TraceSource API: new code should pass a
// TraceSource to RunAllSource (or run a matrix on an Engine).
func RunAll(preds []Predictor, source func() TraceReader, opt Options) ([]Result, error) {
	return RunAllSource(preds, FuncSource{Label: "trace", OpenFn: func() trace.Reader { return source() }}, opt)
}

// Matrix builds the cross product of sources × predictors as engine
// jobs, in source-major order.
func Matrix(sources []TraceSource, preds []PredictorSpec, opt Options) []Job {
	return sim.Matrix(sources, preds, opt)
}

// WriteCSV emits engine results as CSV rows. Output is byte-identical
// for a given matrix regardless of the engine's worker count.
func WriteCSV(w io.Writer, results []RunResult) error { return sim.WriteCSV(w, results) }

// WriteJSON emits engine results, including windowed MPKI series, as a
// JSON document (schema "bfbp.suite.v1").
func WriteJSON(w io.Writer, results []RunResult) error { return sim.WriteJSON(w, results) }

// Traces returns the 40-trace benchmark suite in reporting order.
func Traces() []TraceSpec { return workload.Traces() }

// TraceByName returns the named trace spec (e.g. "SPEC03", "SERV1").
func TraceByName(name string) (TraceSpec, bool) { return workload.ByName(name) }

// TraceNames returns the 40 trace names in reporting order.
func TraceNames() []string { return workload.Names() }

// ProfileBias classifies a trace's branches as completely biased or not.
func ProfileBias(r TraceReader) (BiasStats, error) { return workload.ProfileBias(r) }

// Predictor configurations.
type (
	// PerceptronConfig parameterises the hashed perceptron baseline.
	PerceptronConfig = perceptron.Config
	// OHSNAPConfig parameterises the scaled neural baseline.
	OHSNAPConfig = ohsnap.Config
	// TAGEConfig parameterises TAGE / ISL-TAGE.
	TAGEConfig = tage.Config
	// BFNeuralConfig parameterises the BF-Neural predictor.
	BFNeuralConfig = bfneural.Config
	// BFNeuralMode selects the Fig. 9 ablation level.
	BFNeuralMode = bfneural.Mode
	// BFTAGEConfig parameterises the BF-TAGE predictor.
	BFTAGEConfig = bftage.Config
)

// BF-Neural ablation modes (Fig. 9).
const (
	// BFModeFilterWeights gates by the BST but keeps the history
	// unfiltered.
	BFModeFilterWeights = bfneural.ModeFilterWeights
	// BFModeBiasFreeGHR filters the history without a recency stack.
	BFModeBiasFreeGHR = bfneural.ModeBiasFreeGHR
	// BFModeFull is the complete BF-Neural design.
	BFModeFull = bfneural.ModeFull
)

// NewBimodal returns a PC-indexed 2-bit bimodal predictor.
func NewBimodal(entries int) Predictor { return bimodal.New(entries, 2) }

// NewGShare returns a gshare predictor.
func NewGShare(entries, histBits int) Predictor { return gshare.New(entries, histBits) }

// NewLocal returns a two-level local-history predictor.
func NewLocal(histEntries, histBits, phtEntries int) Predictor {
	return local.New(histEntries, histBits, phtEntries)
}

// NewPerceptron returns a hashed perceptron predictor.
func NewPerceptron(cfg PerceptronConfig) Predictor { return perceptron.New(cfg) }

// Perceptron64KB is the paper's Fig. 9 conventional-perceptron baseline:
// history length 72 in a 64KB budget, no folded-history indexing.
func Perceptron64KB() PerceptronConfig { return perceptron.Default64KB() }

// NewOHSNAP returns an OH-SNAP-style scaled neural predictor.
func NewOHSNAP(cfg OHSNAPConfig) Predictor { return ohsnap.New(cfg) }

// OHSNAP64KB is the ~64KB OH-SNAP configuration used in Fig. 8.
func OHSNAP64KB() OHSNAPConfig { return ohsnap.Default64KB() }

// NewTAGE returns a TAGE/ISL-TAGE predictor.
func NewTAGE(cfg TAGEConfig) *tage.Predictor { return tage.New(cfg) }

// ISLTAGE returns the full ISL-TAGE configuration with n tagged tables
// (loop predictor + statistical corrector + IUM), as in Fig. 10.
func ISLTAGE(n int) TAGEConfig { return tage.Conventional(n) }

// TAGEBare returns the TAGE-with-loop-predictor configuration of Fig. 8
// (no SC, no IUM).
func TAGEBare(n int) TAGEConfig { return tage.ConventionalBare(n) }

// NewBFNeural returns the paper's BF-Neural predictor.
func NewBFNeural(cfg BFNeuralConfig) *bfneural.Predictor { return bfneural.New(cfg) }

// BFNeural64KB is the §VI-B 64KB BF-Neural configuration.
func BFNeural64KB() BFNeuralConfig { return bfneural.Default64KB() }

// BFNeural32KB is the §VI-B 32KB BF-Neural configuration.
func BFNeural32KB() BFNeuralConfig { return bfneural.Default32KB() }

// BFNeuralAblation returns the Fig. 9 configuration for a mode.
func BFNeuralAblation(mode BFNeuralMode) BFNeuralConfig { return bfneural.Ablation(mode) }

// BFNeuralAhead is the §VIII future-work ahead-pipelined configuration:
// weight rows indexed from history alone, with the PC arriving late.
func BFNeuralAhead() BFNeuralConfig { return bfneural.AheadPipelined() }

// NewBFTAGE returns the paper's BF-TAGE predictor.
func NewBFTAGE(cfg BFTAGEConfig) *bftage.Predictor { return bftage.New(cfg) }

// BFISLTAGE returns the BF-ISL-TAGE configuration with n tagged tables
// (SC and IUM inherited from ISL-TAGE), as in Fig. 10.
func BFISLTAGE(n int) BFTAGEConfig { return bftage.Conventional(n) }

// BFTAGEBare drops the SC/IUM components.
func BFTAGEBare(n int) BFTAGEConfig { return bftage.ConventionalBare(n) }

// BFGEHLConfig parameterises the BF-GEHL extension predictor (a GEHL
// indexed by the bias-free global history register — beyond the paper's
// evaluated designs, see internal/core/bfgehl).
type BFGEHLConfig = bfgehl.Config

// NewBFGEHL returns the BF-GEHL extension predictor.
func NewBFGEHL(cfg BFGEHLConfig) Predictor { return bfgehl.New(cfg) }

// BFGEHL64KB is an 8-table ~64KB BF-GEHL.
func BFGEHL64KB() BFGEHLConfig { return bfgehl.Default64KB() }

// InterleaveTraces merges traces by round-robin quanta of `quantum`
// branches, modelling context switches between processes; PCs are
// offset into disjoint ranges per process.
func InterleaveTraces(quantum int, traces ...Trace) Trace {
	return trace.Interleave(quantum, traces...)
}

// Related-work baseline configurations (paper §VII).
type (
	// GEHLConfig parameterises the O-GEHL predictor [11].
	GEHLConfig = gehl.Config
	// FilterConfig parameterises the Filter predictor [22].
	FilterConfig = filter.Config
	// StridedConfig parameterises the strided-sampling perceptron [26].
	StridedConfig = strided.Config
	// TournamentConfig parameterises the Alpha-style hybrid [17].
	TournamentConfig = tournament.Config
	// YAGSConfig parameterises the YAGS predictor [16].
	YAGSConfig = yags.Config
)

// NewYAGS returns a YAGS predictor (Eden & Mudge 1998): bias in a choice
// PHT, history capacity spent only on the exceptions.
func NewYAGS(cfg YAGSConfig) Predictor { return yags.New(cfg) }

// YAGS64KB is a ~64KB YAGS.
func YAGS64KB() YAGSConfig { return yags.Default64KB() }

// NewGEHL returns an O-GEHL predictor (Seznec 2005), the origin of the
// geometric history-length series TAGE and BF-TAGE use.
func NewGEHL(cfg GEHLConfig) Predictor { return gehl.New(cfg) }

// GEHL64KB is an 8-table ~64KB O-GEHL.
func GEHL64KB() GEHLConfig { return gehl.Default64KB() }

// NewFilter returns the Filter predictor (Chang et al. 1996): bias
// filtering that protects the pattern table rather than restructuring
// the history — the paper's closest related work (§VII).
func NewFilter(cfg FilterConfig) Predictor { return filter.New(cfg) }

// Filter64KB is a ~64KB Filter predictor.
func Filter64KB() FilterConfig { return filter.Default64KB() }

// NewStrided returns a strided-sampling hashed perceptron (Jiménez,
// CBP-4): the competing approach to deep history reach on a budget.
func NewStrided(cfg StridedConfig) Predictor { return strided.New(cfg) }

// Strided64KB is a ~64KB strided perceptron sampling out to 1024
// branches.
func Strided64KB() StridedConfig { return strided.Default64KB() }

// NewTournament returns an Alpha-21264-style local/global hybrid.
func NewTournament(cfg TournamentConfig) Predictor { return tournament.New(cfg) }

// Tournament64KB is a ~64KB tournament hybrid.
func Tournament64KB() TournamentConfig { return tournament.Default64KB() }

// NewProbabilisticBST builds the probabilistic-counter Branch Status
// Table the paper advocates for production designs (§IV-B1): unlike the
// 2-bit FSM, it can reclassify a branch from non-biased back to biased
// when the application changes phase. Assign it to a BFNeuralConfig or
// BFTAGEConfig Classifier field.
func NewProbabilisticBST(entries int, seed uint64) bst.Classifier {
	return bst.NewProbTable(entries, seed)
}

// NewBiasOracle builds a static profile-assisted bias classifier (§VI-D)
// from a profiling pass over the trace; assign it to a BFNeuralConfig or
// BFTAGEConfig Classifier field.
func NewBiasOracle(r TraceReader) (*bst.Oracle, error) {
	o := bst.NewOracle()
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return o, nil
		}
		if err != nil {
			return nil, err
		}
		o.Observe(rec.PC, rec.Taken)
	}
}
