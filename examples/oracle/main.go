// Oracle: reproduce the paper's §VI-D experiment — static
// profile-assisted bias classification versus dynamic detection. Server
// workloads like SERV3 contain phase-changing branches that look biased
// for long stretches; the 2-bit detection FSM classifies them non-biased
// after the first flip and perturbs the recency stacks. A profiling
// pre-pass (here: an exact oracle built from the trace itself) removes
// those transients; the paper reports SERV3 improving from 2.62 to 2.44
// MPKI this way.
//
//	go run ./examples/oracle
package main

import (
	"fmt"
	"log"

	"bfbp"
)

func main() {
	fmt.Printf("%-8s %14s %14s %10s\n", "trace", "dynamic-BST", "static-oracle", "delta")
	for _, name := range []string{"SERV3", "FP1", "MM5", "SPEC05"} {
		spec, ok := bfbp.TraceByName(name)
		if !ok {
			log.Fatalf("unknown trace %s", name)
		}
		tr := spec.GenerateN(200_000)
		opt := bfbp.Options{Warmup: 20_000}

		// Dynamic detection: the on-the-fly 2-bit FSM of Fig. 5.
		dyn, err := bfbp.Run(bfbp.NewBFTAGE(bfbp.BFISLTAGE(10)), tr.Stream(), opt)
		if err != nil {
			log.Fatal(err)
		}

		// Static classification: profile the whole trace first, then
		// plug the oracle in as the Classifier.
		oracle, err := bfbp.NewBiasOracle(tr.Stream())
		if err != nil {
			log.Fatal(err)
		}
		cfg := bfbp.BFISLTAGE(10)
		cfg.Name = "bf-isl-tage-10-oracle"
		cfg.Classifier = oracle
		orc, err := bfbp.Run(bfbp.NewBFTAGE(cfg), tr.Stream(), opt)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-8s %14.3f %14.3f %+9.3f\n",
			name, dyn.MPKI(), orc.MPKI(), orc.MPKI()-dyn.MPKI())
	}
	fmt.Println("\n(MPKI; negative delta = the profile-assisted classification helps, §VI-D)")
}
