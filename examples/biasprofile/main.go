// Biasprofile: reproduce the paper's Fig. 2 analysis — the fraction of
// each benchmark trace contributed by completely biased branches, i.e.
// branches that resolve the same way every single time. These are the
// branches the Bias-Free predictor filters out of its history.
//
//	go run ./examples/biasprofile
package main

import (
	"fmt"
	"log"
	"strings"

	"bfbp"
)

func main() {
	fmt.Printf("%-8s %9s %9s %7s  %s\n", "trace", "dyn-bias", "stat-bias", "sites", "")
	for _, spec := range bfbp.Traces() {
		// A short prefix suffices for profiling.
		tr := spec.GenerateN(80_000)
		st, err := bfbp.ProfileBias(tr.Stream())
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(st.DynamicFraction()*40))
		fmt.Printf("%-8s %8.1f%% %8.1f%% %7d  %s\n",
			spec.Name, 100*st.DynamicFraction(), 100*st.StaticFraction(), st.StaticSites, bar)
	}
}
