// Custom: implement your own branch predictor against the harness
// interface and race it against the built-in ones. The example predictor
// is a tiny "agree" hybrid: a bimodal base whose prediction is flipped
// when a small gshare-style table has learned that this (PC, history)
// context disagrees with the bias.
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"log"

	"bfbp"
)

// agreePredictor demonstrates the two-method predictor contract:
// Predict is called first for every committed branch, then Update with
// the resolved outcome. No other framework hooks are needed.
type agreePredictor struct {
	bias  []int8 // PC-indexed 2-bit bias
	agree []int8 // (PC^GHR)-indexed 2-bit agree/disagree
	ghr   uint64
}

func newAgree() *agreePredictor {
	return &agreePredictor{
		bias:  make([]int8, 1<<14),
		agree: make([]int8, 1<<15),
	}
}

func (a *agreePredictor) Name() string { return "agree-hybrid" }

func (a *agreePredictor) biasIdx(pc uint64) uint64 { return (pc >> 2) & (1<<14 - 1) }
func (a *agreePredictor) agreeIdx(pc uint64) uint64 {
	return ((pc >> 2) ^ a.ghr) & (1<<15 - 1)
}

func (a *agreePredictor) Predict(pc uint64) bool {
	base := a.bias[a.biasIdx(pc)] >= 0
	if a.agree[a.agreeIdx(pc)] < 0 {
		return !base
	}
	return base
}

func (a *agreePredictor) Update(pc uint64, taken bool, target uint64) {
	bi := a.biasIdx(pc)
	base := a.bias[bi] >= 0
	ai := a.agreeIdx(pc)
	// Train the agree table toward "did the base get it right here?".
	a.agree[ai] = sat2(a.agree[ai], base == taken)
	a.bias[bi] = sat2(a.bias[bi], taken)
	a.ghr = a.ghr<<1 | b2u(taken)
}

func sat2(v int8, up bool) int8 {
	if up {
		if v < 1 {
			return v + 1
		}
		return v
	}
	if v > -2 {
		return v - 1
	}
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func main() {
	spec, _ := bfbp.TraceByName("INT2")

	preds := []bfbp.Predictor{
		newAgree(),
		bfbp.NewBimodal(1 << 14),
		bfbp.NewGShare(1<<15, 14),
		bfbp.NewBFNeural(bfbp.BFNeural64KB()),
	}
	// Source streams the synthetic trace straight out of its generator —
	// each predictor gets a fresh reader, nothing is materialised.
	results, err := bfbp.RunAllSource(preds, spec.Source(150_000),
		bfbp.Options{Warmup: 15_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %10s %10s\n", "predictor", "MPKI", "accuracy")
	for _, r := range results {
		fmt.Printf("%-14s %10.3f %9.2f%%\n", r.Predictor, r.Stats.MPKI(), 100*r.Stats.Accuracy())
	}
}
