// Quickstart: evaluate the Bias-Free Neural predictor on one synthetic
// benchmark trace and print its accuracy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bfbp"
)

func main() {
	// Pick a benchmark trace from the 40-trace suite and synthesise
	// 200K dynamic conditional branches.
	spec, ok := bfbp.TraceByName("SPEC03")
	if !ok {
		log.Fatal("unknown trace")
	}
	tr := spec.GenerateN(200_000)

	// Build the paper's 64KB BF-Neural predictor and run it. The first
	// 10% of the trace warms the predictor without counting.
	p := bfbp.NewBFNeural(bfbp.BFNeural64KB())
	stats, err := bfbp.Run(p, tr.Stream(), bfbp.Options{Warmup: 20_000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace      : %s (%d branches)\n", spec.Name, stats.Branches)
	fmt.Printf("predictor  : %s\n", p.Name())
	fmt.Printf("MPKI       : %.3f\n", stats.MPKI())
	fmt.Printf("accuracy   : %.2f%%\n", 100*stats.Accuracy())

	// Every predictor can itemise its hardware budget.
	fmt.Printf("budget     : %d bytes\n", p.Storage().TotalBytes())
}
