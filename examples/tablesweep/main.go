// Tablesweep: reproduce the paper's Fig. 10 experiment shape on a small
// trace subset — average MPKI of conventional ISL-TAGE versus BF-ISL-TAGE
// as the number of tagged tables varies. The bias-free history register
// lets few-table configurations reach correlations that conventional
// TAGE needs many long-history tables for.
//
//	go run ./examples/tablesweep
package main

import (
	"fmt"
	"log"

	"bfbp"
)

func main() {
	traces := []string{"SPEC00", "SPEC06", "INT1"}
	const branches = 200_000

	fmt.Printf("%-8s %12s %14s\n", "tables", "ISL-TAGE", "BF-ISL-TAGE")
	for n := 4; n <= 10; n += 2 {
		var sumT, sumB float64
		for _, name := range traces {
			spec, ok := bfbp.TraceByName(name)
			if !ok {
				log.Fatalf("unknown trace %s", name)
			}
			tr := spec.GenerateN(branches)
			opt := bfbp.Options{Warmup: branches / 10}

			st, err := bfbp.Run(bfbp.NewTAGE(bfbp.ISLTAGE(n)), tr.Stream(), opt)
			if err != nil {
				log.Fatal(err)
			}
			sumT += st.MPKI()

			sb, err := bfbp.Run(bfbp.NewBFTAGE(bfbp.BFISLTAGE(n)), tr.Stream(), opt)
			if err != nil {
				log.Fatal(err)
			}
			sumB += sb.MPKI()
		}
		fmt.Printf("%-8d %12.3f %14.3f\n", n, sumT/float64(len(traces)), sumB/float64(len(traces)))
	}
	fmt.Println("\n(lower is better; see cmd/experiments -fig 10 for the full suite)")
}
