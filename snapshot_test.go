package bfbp_test

import (
	"bytes"
	"errors"
	"testing"

	"bfbp"
)

// saveState serialises p's state, failing the test if the predictor
// does not implement Snapshotter or the save errors.
func saveState(t *testing.T, p bfbp.Predictor) []byte {
	t.Helper()
	snap := bfbp.Capabilities(p).Snapshot
	if snap == nil {
		t.Fatalf("%s does not implement Snapshotter", p.Name())
	}
	var buf bytes.Buffer
	if err := snap.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	return buf.Bytes()
}

// loadState restores img into p, failing the test on error.
func loadState(t *testing.T, p bfbp.Predictor, img []byte) {
	t.Helper()
	snap := bfbp.Capabilities(p).Snapshot
	if snap == nil {
		t.Fatalf("%s does not implement Snapshotter", p.Name())
	}
	if err := snap.LoadState(bytes.NewReader(img)); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
}

// TestEveryPredictorSnapshots is the tentpole's coverage guard: every
// registry predictor must implement the optional Snapshotter interface.
func TestEveryPredictorSnapshots(t *testing.T) {
	for _, info := range bfbp.Predictors() {
		caps := info.Capabilities()
		if caps.Snapshot == nil {
			t.Errorf("%s: no Snapshotter", info.Name)
		}
		found := false
		for _, n := range caps.Names() {
			if n == "snapshot" {
				found = true
			}
		}
		if caps.Snapshot != nil && !found {
			t.Errorf("%s: Capabilities().Names() omits \"snapshot\"", info.Name)
		}
	}
}

// TestBitExactResume asserts the snapshot contract on every registry
// predictor over two workload suites: running N branches, snapshotting,
// restoring into a fresh instance, and running M more must equal a
// straight N+M run — same counters, same per-PC attribution, same
// provider-table histogram.
func TestBitExactResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry integration test")
	}
	for _, trName := range []string{"SPEC03", "SERV1"} {
		tr := genTrace(t, trName, 6000)
		split := len(tr) / 2
		for _, info := range bfbp.Predictors() {
			info := info
			t.Run(trName+"/"+info.Name, func(t *testing.T) {
				t.Parallel()
				opt := bfbp.Options{PerPC: true}

				sp := info.New()
				straight, err := bfbp.Run(sp, tr.Stream(), opt)
				if err != nil {
					t.Fatal(err)
				}

				first := info.New()
				got, err := bfbp.Run(first, tr[:split].Stream(), opt)
				if err != nil {
					t.Fatal(err)
				}
				img := saveState(t, first)
				resumed := info.New()
				loadState(t, resumed, img)
				second, err := bfbp.Run(resumed, tr[split:].Stream(), opt)
				if err != nil {
					t.Fatal(err)
				}
				got.Merge(second)

				if got.Branches != straight.Branches ||
					got.Mispredicts != straight.Mispredicts ||
					got.Instructions != straight.Instructions {
					t.Fatalf("split run (%d br, %d misp, %d instr) != straight (%d br, %d misp, %d instr)",
						got.Branches, got.Mispredicts, got.Instructions,
						straight.Branches, straight.Mispredicts, straight.Instructions)
				}
				if got.MPKI() != straight.MPKI() {
					t.Fatalf("split MPKI %v != straight %v", got.MPKI(), straight.MPKI())
				}
				wantOff := straight.TopOffenders(10)
				gotOff := got.TopOffenders(10)
				if len(wantOff) != len(gotOff) {
					t.Fatalf("offender count %d != %d", len(gotOff), len(wantOff))
				}
				for i := range wantOff {
					if wantOff[i] != gotOff[i] {
						t.Fatalf("offender %d: %+v != %+v", i, gotOff[i], wantOff[i])
					}
				}
				th1 := bfbp.Capabilities(sp).TableHits
				th2 := bfbp.Capabilities(resumed).TableHits
				if (th1 == nil) != (th2 == nil) {
					t.Fatal("TableHits capability differs between instances")
				}
				if th1 != nil {
					a, b := th1.TableHits(), th2.TableHits()
					if len(a) != len(b) {
						t.Fatalf("TableHits length %d != %d", len(b), len(a))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("TableHits[%d]: split %d != straight %d", i, b[i], a[i])
						}
					}
				}
			})
		}
	}
}

// TestSnapshotByteStable asserts save→load→save is byte-identical for
// every registry predictor after training.
func TestSnapshotByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry integration test")
	}
	tr := genTrace(t, "SPEC07", 3000)
	for _, info := range bfbp.Predictors() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			p := info.New()
			if _, err := bfbp.Run(p, tr.Stream(), bfbp.Options{}); err != nil {
				t.Fatal(err)
			}
			img1 := saveState(t, p)
			q := info.New()
			loadState(t, q, img1)
			img2 := saveState(t, q)
			if !bytes.Equal(img1, img2) {
				t.Fatalf("save→load→save drifted: %d vs %d bytes", len(img1), len(img2))
			}
		})
	}
}

// TestSnapshotMismatchErrors asserts the typed-error contract when a
// snapshot is restored into the wrong predictor or configuration.
func TestSnapshotMismatchErrors(t *testing.T) {
	tr := genTrace(t, "INT2", 1000)
	p := bfbp.NewGShare(1<<16, 16)
	if _, err := bfbp.Run(p, tr.Stream(), bfbp.Options{}); err != nil {
		t.Fatal(err)
	}
	img := saveState(t, p)

	hdr, err := bfbp.ReadSnapshotHeader(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("ReadSnapshotHeader: %v", err)
	}
	if hdr.Predictor != "gshare" {
		t.Fatalf("header predictor %q, want gshare", hdr.Predictor)
	}

	wrong := bfbp.NewBimodal(1 << 14)
	if err := bfbp.Capabilities(wrong).Snapshot.LoadState(bytes.NewReader(img)); !errors.Is(err, bfbp.ErrSnapshotPredictor) {
		t.Fatalf("load into bimodal: %v, want ErrSnapshotPredictor", err)
	}
	smaller := bfbp.NewGShare(1<<14, 14)
	if err := bfbp.Capabilities(smaller).Snapshot.LoadState(bytes.NewReader(img)); !errors.Is(err, bfbp.ErrSnapshotConfig) {
		t.Fatalf("load into resized gshare: %v, want ErrSnapshotConfig", err)
	}
	if err := bfbp.Capabilities(p).Snapshot.LoadState(bytes.NewReader(img[:len(img)/2])); !errors.Is(err, bfbp.ErrSnapshotTruncated) {
		t.Fatalf("truncated load: %v, want ErrSnapshotTruncated", err)
	}
}

// TestSelectPredictors covers the shared -preds selection helper.
func TestSelectPredictors(t *testing.T) {
	all, err := bfbp.SelectPredictors("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(bfbp.Predictors()) {
		t.Fatalf("all selected %d, registry has %d", len(all), len(bfbp.Predictors()))
	}
	got, err := bfbp.SelectPredictors(" gshare, bf-neural-64kb ,tage-7")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"gshare", "bf-neural", "tage-7"}
	if len(got) != len(names) {
		t.Fatalf("selected %d entries, want %d", len(got), len(names))
	}
	for i, want := range names {
		if got[i].Name != want {
			t.Errorf("entry %d: %q, want %q", i, got[i].Name, want)
		}
	}
	if _, err := bfbp.SelectPredictors("no-such-predictor"); err == nil {
		t.Error("unknown name did not error")
	}
	if _, err := bfbp.SelectPredictors(" , "); err == nil {
		t.Error("empty list did not error")
	}
}
